"""Command-line interface: ``python -m repro <command>``.

Commands mirror the experiment harness::

    python -m repro table3
    python -m repro table4 --dataset german --n 1500
    python -m repro table5 --n 3000
    python -m repro table6 --dataset stackoverflow
    python -m repro figure3 | figure4 | figure5 | apriori-sweep
    python -m repro run --dataset stackoverflow --variant "Group fairness"

and the serving subsystem::

    python -m repro export --dataset german --out ruleset.json
    python -m repro export --dataset german --artifact-dir artifacts/ --activate
    python -m repro serve --artifact ruleset.json --port 8080
    python -m repro serve --artifact-dir artifacts/ --workers 8 --batch-window-ms 2
    python -m repro list-datasets
    python -m repro --version

Dataset sizes default to the laptop-scale experiment settings; ``--n``
overrides both datasets, ``--seed`` the generator seed.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    ExperimentSettings,
    format_apriori_sweep,
    format_figure3,
    format_figure4,
    format_figure5,
    format_table3,
    format_table4,
    format_table5,
    format_table6,
    run_apriori_sweep,
    run_figure3,
    run_figure4,
    run_figure5,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
)
from repro.experiments.casestudy import render_case_study


def _settings(args: argparse.Namespace) -> ExperimentSettings:
    base = ExperimentSettings.from_environment()
    so_n = args.n if args.n is not None else base.so_n
    german_n = args.n if args.n is not None else base.german_n
    seed = args.seed if args.seed is not None else base.seed
    n_workers = getattr(args, "workers", None)
    n_workers = n_workers if n_workers is not None else base.n_workers
    executor = getattr(args, "executor", None) or base.executor
    cache_size = getattr(args, "cache_size", None)
    cache_size = cache_size if cache_size is not None else base.cache_size
    return ExperimentSettings(
        so_n=so_n, german_n=german_n, seed=seed,
        n_workers=n_workers, executor=executor, cache_size=cache_size,
        n_override=args.n,
    )


def _cmd_table3(args: argparse.Namespace) -> str:
    return format_table3(run_table3(rng=args.seed if args.seed else 7))


def _cmd_table4(args: argparse.Namespace) -> str:
    return format_table4(run_table4(args.dataset, settings=_settings(args)))


def _cmd_table5(args: argparse.Namespace) -> str:
    return format_table5(run_table5(args.dataset, settings=_settings(args)))


def _cmd_table6(args: argparse.Namespace) -> str:
    return format_table6(run_table6(args.dataset, settings=_settings(args)))


def _cmd_figure3(args: argparse.Namespace) -> str:
    return format_figure3(run_figure3(args.dataset, settings=_settings(args)))


def _cmd_figure4(args: argparse.Namespace) -> str:
    return format_figure4(run_figure4(args.dataset, settings=_settings(args)))


def _cmd_figure5(args: argparse.Namespace) -> str:
    return format_figure5(run_figure5(args.dataset, settings=_settings(args)))


def _cmd_apriori_sweep(args: argparse.Namespace) -> str:
    return format_apriori_sweep(
        run_apriori_sweep(args.dataset, settings=_settings(args))
    )


def _run_variant(args: argparse.Namespace):
    """Shared mine step: load the dataset and run FairCap on one variant."""
    import dataclasses

    from repro.core.faircap import FairCap

    settings = _settings(args)
    bundle = settings.load(args.dataset)
    variants = settings.variants_for(bundle)
    if args.variant not in variants:
        raise SystemExit(
            f"unknown variant {args.variant!r}; choose from: "
            + ", ".join(sorted(variants))
        )
    config = settings.config_for(bundle, variants[args.variant])
    if getattr(args, "trace_json", None):
        config = dataclasses.replace(config, telemetry=True)
    if getattr(args, "checkpoint_dir", None):
        config = dataclasses.replace(config, checkpoint_dir=args.checkpoint_dir)
    if getattr(args, "fault_plan", None):
        config = dataclasses.replace(config, fault_plan=args.fault_plan)
    if getattr(args, "shard_rows", None):
        config = dataclasses.replace(
            config,
            shard_rows=args.shard_rows,
            shard_dir=getattr(args, "shard_dir", None),
        )
    result = FairCap(config).run(
        bundle.table, bundle.schema, bundle.dag, bundle.protected
    )
    return settings, bundle, result


def _cmd_run(args: argparse.Namespace) -> str:
    settings, bundle, result = _run_variant(args)
    trace_lines = []
    if getattr(args, "trace_json", None):
        from repro.obs import write_report

        report = dict(result.telemetry or {})
        report.setdefault("meta", {}).update(
            {"dataset": args.dataset, "variant": args.variant, "seed": settings.seed}
        )
        write_report(args.trace_json, report)
        trace_lines = [f"telemetry report written to {args.trace_json}", ""]
    lines = trace_lines + [
        f"dataset={args.dataset} variant={args.variant!r} "
        f"rows={bundle.table.n_rows}",
        f"rules={result.metrics.n_rules} "
        f"coverage={result.metrics.coverage:.1%} "
        f"protected coverage={result.metrics.protected_coverage:.1%}",
        f"expected utility={result.metrics.expected_utility:,.2f} "
        f"(protected {result.metrics.expected_utility_protected:,.2f}, "
        f"non-protected {result.metrics.expected_utility_non_protected:,.2f}, "
        f"unfairness {result.metrics.unfairness:,.2f})",
        "",
        render_case_study(
            f"{args.dataset} ({args.variant})", result.ruleset,
            bundle.templates, rng=settings.seed,
        ),
    ]
    return "\n".join(lines)


def _mine_artifact(args: argparse.Namespace):
    """Mine a ruleset and wrap it as a serving artifact (export path)."""
    from repro.serve.artifact import ServingArtifact

    settings, bundle, result = _run_variant(args)
    artifact = ServingArtifact(
        ruleset=result.ruleset,
        schema=bundle.schema,
        protected=bundle.protected,
        metadata={
            "dataset": args.dataset,
            "variant": args.variant,
            "n_rows": bundle.table.n_rows,
            "seed": settings.seed,
            "expected_utility": result.metrics.expected_utility,
            "coverage": result.metrics.coverage,
        },
    )
    return artifact, result


def _cmd_export(args: argparse.Namespace) -> str:
    if not args.out and not args.artifact_dir:
        raise SystemExit("export needs --out and/or --artifact-dir")
    artifact, result = _mine_artifact(args)
    summary = (
        f"{result.ruleset.size} rules "
        f"(coverage {result.metrics.coverage:.1%}, expected utility "
        f"{result.metrics.expected_utility:,.2f})"
    )
    lines = []
    if args.out:
        artifact.save(args.out)
        lines.append(f"exported {summary} to {args.out}")
    if args.artifact_dir:
        from repro.serve.registry import ArtifactRegistry

        registry = ArtifactRegistry(args.artifact_dir)
        version = registry.publish(artifact)
        if args.activate:
            registry.activate(version)
        state = "activated" if args.activate else "published"
        lines.append(
            f"{state} {summary} as version {version} in {args.artifact_dir}"
        )
        if args.activate:
            lines.append(
                "note: a running server picks up the new version via "
                'POST /v1/artifacts/activate {"version": %d}' % version
            )
    return "\n".join(lines)


def _serve_config(args: argparse.Namespace):
    """``ServeConfig`` = built-in defaults <- REPRO_SERVE_* env <- CLI flags."""
    from repro.serve.config import ServeConfig

    overrides: dict[str, object] = {"quiet": False}
    if args.host is not None:
        overrides["host"] = args.host
    if args.port is not None:
        overrides["port"] = args.port
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.cache_size is not None:
        overrides["cache_size"] = args.cache_size
    if args.max_concurrency is not None:
        overrides["max_concurrency"] = args.max_concurrency or None
    if args.request_deadline_ms is not None:
        overrides["request_deadline_seconds"] = args.request_deadline_ms / 1e3
    if args.batch_window_ms is not None:
        overrides["batch_window_ms"] = args.batch_window_ms
    if args.batch_max_size is not None:
        overrides["batch_max_size"] = args.batch_max_size
    if args.artifact_dir is not None:
        overrides["artifact_dir"] = args.artifact_dir
    return ServeConfig.from_environment().with_overrides(**overrides)


def _cmd_serve(args: argparse.Namespace) -> str:
    from repro.serve.http import run_server
    from repro.utils.errors import ServeError

    config = _serve_config(args)
    if args.artifact and config.artifact_dir:
        raise SystemExit("--artifact and --artifact-dir are mutually exclusive")
    if config.artifact_dir:
        run_server(config=config)
    elif args.artifact:
        from repro.serve.artifact import ServingArtifact
        from repro.serve.engine import PrescriptionEngine

        artifact = ServingArtifact.load(args.artifact)
        engine = PrescriptionEngine.from_artifact(
            artifact, cache_size=config.cache_size
        )
        run_server(engine, config=config)
    else:
        raise ServeError(
            "serve needs --artifact FILE or --artifact-dir DIR "
            "(or REPRO_SERVE_ARTIFACT_DIR)"
        )
    return ""


def _cmd_list_datasets(args: argparse.Namespace) -> str:
    from repro.datasets.registry import DATASET_LOADERS
    from repro.scenarios import oracle_grid
    from repro.scenarios.catalog import SCENARIO_PREFIX

    lines = ["Bundled datasets:"]
    for name, loader in sorted(DATASET_LOADERS.items()):
        doc = (loader.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        lines.append(f"  {name:<15} {summary}")
    lines.append("")
    lines.append(
        "Scenario worlds (ground-truth SCMs with known CATEs; "
        f"load as {SCENARIO_PREFIX}<name>):"
    )
    for spec in oracle_grid():
        lines.append(f"  {SCENARIO_PREFIX}{spec.name:<28} {spec.description}")
    return "\n".join(lines)


_COMMANDS = {
    "table3": _cmd_table3,
    "table4": _cmd_table4,
    "table5": _cmd_table5,
    "table6": _cmd_table6,
    "figure3": _cmd_figure3,
    "figure4": _cmd_figure4,
    "figure5": _cmd_figure5,
    "apriori-sweep": _cmd_apriori_sweep,
    "run": _cmd_run,
    "export": _cmd_export,
    "serve": _cmd_serve,
    "list-datasets": _cmd_list_datasets,
}

_EXPERIMENT_COMMANDS = (
    "table3", "table4", "table5", "table6",
    "figure3", "figure4", "figure5", "apriori-sweep", "run",
)


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FairCap reproduction: regenerate paper experiments "
                    "and serve mined rulesets.",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_worker_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="treatment-mining worker count (0 = all CPUs; default 1). "
                 "Results are identical for any worker count — parallelism "
                 "only changes runtime (see repro.parallel).",
        )
        cmd.add_argument(
            "--executor", default=None,
            choices=["auto", "serial", "thread", "process"],
            help="execution strategy behind --workers "
                 "(auto = process when --workers != 1)",
        )
        cmd.add_argument(
            "--cache-size", type=int, default=None, metavar="N",
            help="CATE memo entry bound (0 disables caching for "
                 "paper-comparable cold runtimes; default 65536). "
                 "Caching never changes results, only runtime.",
        )
        cmd.add_argument(
            "--checkpoint-dir", default=None, metavar="DIR",
            help="persist completed grouping-context results under DIR "
                 "and resume from them on a rerun (resume is bit-identical "
                 "to a fresh run; see repro.parallel.resilience)",
        )
        cmd.add_argument(
            "--fault-plan", default=None, metavar="SPEC",
            help='deterministic fault injection for resilience testing, '
                 'e.g. "kill:chunk=1" or "delay:chunk=0,seconds=30" '
                 '(never use in production runs)',
        )
        cmd.add_argument(
            "--shard-rows", type=int, default=None, metavar="N",
            help="out-of-core mode: spill the table into N-row shards and "
                 "mine against the sharded store (peak memory scales with "
                 "the shard, not the table; results are bit-identical to "
                 "the in-RAM run — see repro.datasets.sharded)",
        )
        cmd.add_argument(
            "--shard-dir", default=None, metavar="DIR",
            help="persist the shard store under DIR and reuse it across "
                 "runs of the same table (requires --shard-rows; default "
                 "is a temporary directory removed after the run)",
        )

    for name in _EXPERIMENT_COMMANDS:
        cmd = sub.add_parser(name)
        if name == "run":
            # `run` accepts any registered dataset, including the
            # ground-truth scenario worlds (scenario:<name>); the paper
            # table/figure commands stay pinned to the paper datasets.
            cmd.add_argument(
                "--dataset", default="stackoverflow",
                help="bundled dataset or scenario world "
                     "(see `python -m repro list-datasets`)",
            )
        else:
            cmd.add_argument("--dataset", default="stackoverflow",
                             choices=["stackoverflow", "german"])
        cmd.add_argument("--n", type=int, default=None,
                         help="row-count override for both datasets")
        cmd.add_argument("--seed", type=int, default=None)
        add_worker_flags(cmd)
        if name == "run":
            cmd.add_argument("--variant", default="Group fairness",
                             help='e.g. "No constraints", "Group fairness"')
            cmd.add_argument(
                "--trace-json", default=None, metavar="PATH",
                help="enable run telemetry and write the span/counter "
                     "report (repro.obs.report schema) to PATH",
            )

    export = sub.add_parser(
        "export", help="mine a ruleset and write a serving artifact"
    )
    export.add_argument("--dataset", default="stackoverflow",
                        help="bundled dataset or scenario world "
                             "(see `python -m repro list-datasets`)")
    export.add_argument("--n", type=int, default=None,
                        help="row-count override for both datasets")
    export.add_argument("--seed", type=int, default=None)
    add_worker_flags(export)
    export.add_argument("--variant", default="Group fairness",
                        help='e.g. "No constraints", "Group fairness"')
    export.add_argument("--out", default=None,
                        help="output path for the ruleset artifact JSON")
    export.add_argument("--artifact-dir", default=None, metavar="DIR",
                        help="publish the artifact as the next version in a "
                             "versioned registry directory (see `serve "
                             "--artifact-dir`)")
    export.add_argument("--activate", action="store_true",
                        help="with --artifact-dir: also move the ACTIVE "
                             "pointer to the new version")

    serve = sub.add_parser(
        "serve", help="serve a ruleset artifact over HTTP (/v1 API)"
    )
    serve.add_argument("--artifact", default=None,
                       help="path to a single ruleset artifact JSON "
                            "(single-artifact mode, no hot reload)")
    serve.add_argument("--artifact-dir", default=None, metavar="DIR",
                       help="versioned artifact registry directory; serves "
                            "the ACTIVE version and enables hot reload via "
                            "POST /v1/artifacts/activate")
    serve.add_argument("--host", default=None,
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None,
                       help="bind port (default 8080)")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="request worker threads behind the accept loop "
                            "(default 8; bounds connection concurrency)")
    serve.add_argument("--cache-size", type=int, default=None,
                       help="profile LRU cache size (0 disables; default 1024)")
    serve.add_argument("--max-concurrency", type=int, default=None,
                       help="in-flight request bound; excess requests get "
                            "503 + Retry-After (0 = unbounded; default 64)")
    serve.add_argument("--request-deadline-ms", type=float, default=None,
                       help="per-request wall-clock budget; late requests "
                            "get 504 (default: none)")
    serve.add_argument("--batch-window-ms", type=float, default=None,
                       help="coalesce concurrent single-profile prescribes "
                            "arriving within this window into one vectorized "
                            "batch match (0 disables; default 0)")
    serve.add_argument("--batch-max-size", type=int, default=None,
                       help="cap on coalesced requests per batch (default 64)")

    sub.add_parser("list-datasets", help="list the bundled datasets")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro.utils.errors import ReproError

    args = build_parser().parse_args(argv)
    try:
        output = _COMMANDS[args.command](args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
