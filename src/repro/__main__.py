"""Command-line interface: ``python -m repro <command>``.

Commands mirror the experiment harness::

    python -m repro table3
    python -m repro table4 --dataset german --n 1500
    python -m repro table5 --n 3000
    python -m repro table6 --dataset stackoverflow
    python -m repro figure3 | figure4 | figure5 | apriori-sweep
    python -m repro run --dataset stackoverflow --variant "Group fairness"

Dataset sizes default to the laptop-scale experiment settings; ``--n``
overrides both datasets, ``--seed`` the generator seed.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    ExperimentSettings,
    format_apriori_sweep,
    format_figure3,
    format_figure4,
    format_figure5,
    format_table3,
    format_table4,
    format_table5,
    format_table6,
    run_apriori_sweep,
    run_figure3,
    run_figure4,
    run_figure5,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
)
from repro.experiments.casestudy import render_case_study


def _settings(args: argparse.Namespace) -> ExperimentSettings:
    base = ExperimentSettings.from_environment()
    so_n = args.n if args.n is not None else base.so_n
    german_n = args.n if args.n is not None else base.german_n
    seed = args.seed if args.seed is not None else base.seed
    return ExperimentSettings(so_n=so_n, german_n=german_n, seed=seed)


def _cmd_table3(args: argparse.Namespace) -> str:
    return format_table3(run_table3(rng=args.seed if args.seed else 7))


def _cmd_table4(args: argparse.Namespace) -> str:
    return format_table4(run_table4(args.dataset, settings=_settings(args)))


def _cmd_table5(args: argparse.Namespace) -> str:
    return format_table5(run_table5(args.dataset, settings=_settings(args)))


def _cmd_table6(args: argparse.Namespace) -> str:
    return format_table6(run_table6(args.dataset, settings=_settings(args)))


def _cmd_figure3(args: argparse.Namespace) -> str:
    return format_figure3(run_figure3(args.dataset, settings=_settings(args)))


def _cmd_figure4(args: argparse.Namespace) -> str:
    return format_figure4(run_figure4(args.dataset, settings=_settings(args)))


def _cmd_figure5(args: argparse.Namespace) -> str:
    return format_figure5(run_figure5(args.dataset, settings=_settings(args)))


def _cmd_apriori_sweep(args: argparse.Namespace) -> str:
    return format_apriori_sweep(
        run_apriori_sweep(args.dataset, settings=_settings(args))
    )


def _cmd_run(args: argparse.Namespace) -> str:
    from repro.core.faircap import FairCap

    settings = _settings(args)
    bundle = settings.load(args.dataset)
    variants = settings.variants_for(bundle)
    if args.variant not in variants:
        raise SystemExit(
            f"unknown variant {args.variant!r}; choose from: "
            + ", ".join(sorted(variants))
        )
    config = settings.config_for(bundle, variants[args.variant])
    result = FairCap(config).run(
        bundle.table, bundle.schema, bundle.dag, bundle.protected
    )
    lines = [
        f"dataset={args.dataset} variant={args.variant!r} "
        f"rows={bundle.table.n_rows}",
        f"rules={result.metrics.n_rules} "
        f"coverage={result.metrics.coverage:.1%} "
        f"protected coverage={result.metrics.protected_coverage:.1%}",
        f"expected utility={result.metrics.expected_utility:,.2f} "
        f"(protected {result.metrics.expected_utility_protected:,.2f}, "
        f"non-protected {result.metrics.expected_utility_non_protected:,.2f}, "
        f"unfairness {result.metrics.unfairness:,.2f})",
        "",
        render_case_study(
            f"{args.dataset} ({args.variant})", result.ruleset,
            bundle.templates, rng=settings.seed,
        ),
    ]
    return "\n".join(lines)


_COMMANDS = {
    "table3": _cmd_table3,
    "table4": _cmd_table4,
    "table5": _cmd_table5,
    "table6": _cmd_table6,
    "figure3": _cmd_figure3,
    "figure4": _cmd_figure4,
    "figure5": _cmd_figure5,
    "apriori-sweep": _cmd_apriori_sweep,
    "run": _cmd_run,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FairCap reproduction: regenerate paper experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in _COMMANDS:
        cmd = sub.add_parser(name)
        cmd.add_argument("--dataset", default="stackoverflow",
                         choices=["stackoverflow", "german"])
        cmd.add_argument("--n", type=int, default=None,
                         help="row-count override for both datasets")
        cmd.add_argument("--seed", type=int, default=None)
        if name == "run":
            cmd.add_argument("--variant", default="Group fairness",
                             help='e.g. "No constraints", "Group fairness"')
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    print(_COMMANDS[args.command](args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
