"""CauSumX adaptation (Youngmann et al., SIGMOD 2024) — the paper's first
baseline.

CauSumX generates summarized causal explanations for aggregate views.
Applied to the whole table, Sec. 7.1 notes it "can be viewed as a solution
to our problem with only an overall coverage constraint": Step 2 searches
for the treatment with the highest CATE per grouping pattern (no fairness
penalty), and selection enforces coverage of the overall population only.

This module therefore runs FairCap with the corresponding variant — no
fairness constraint, group coverage over the whole population with no
protected floor — which is exactly the algorithmic content of the
adaptation.
"""

from __future__ import annotations

from dataclasses import replace

from repro.causal.dag import CausalDAG
from repro.core.config import FairCapConfig
from repro.core.faircap import FairCap, FairCapResult
from repro.core.variants import ProblemVariant
from repro.fairness.coverage import CoverageConstraint, CoverageKind
from repro.rules.protected import ProtectedGroup
from repro.tabular.schema import Schema
from repro.tabular.table import Table


def causumx_variant(theta: float = 0.5) -> ProblemVariant:
    """The problem variant CauSumX effectively solves.

    Overall coverage ``theta`` with **no** protected-coverage floor and
    **no** fairness constraint.
    """
    return ProblemVariant(
        fairness=None,
        coverage=CoverageConstraint(CoverageKind.GROUP, theta, 0.0),
    )


def run_causumx(
    table: Table,
    schema: Schema | None,
    dag: CausalDAG,
    protected: ProtectedGroup,
    config: FairCapConfig | None = None,
    theta: float = 0.5,
) -> FairCapResult:
    """Run the CauSumX adaptation.

    Parameters
    ----------
    table, schema, dag, protected:
        As in :meth:`repro.core.FairCap.run`; the protected group is used
        only for *reporting* (CauSumX itself ignores it).
    config:
        Base configuration; its variant is overridden.
    theta:
        Overall coverage threshold.
    """
    base = config if config is not None else FairCapConfig()
    adapted = replace(base, variant=causumx_variant(theta))
    return FairCap(adapted).run(table, schema, dag, protected)
