"""Baselines: CauSumX, IDS and FRL (S15-S18; Sec. 7.1 of the paper)."""

from repro.baselines.association import (
    AssociationRule,
    binarize_outcome,
    mine_association_rules,
)
from repro.baselines.causumx import run_causumx
from repro.baselines.ids import IDSConfig, IDSResult, run_ids
from repro.baselines.frl import FRLConfig, FRLResult, run_frl
from repro.baselines.adapt import (
    AdaptedBaselineResult,
    adapt_if_as_grouping,
    adapt_if_as_intervention,
)

__all__ = [
    "AssociationRule",
    "binarize_outcome",
    "mine_association_rules",
    "run_causumx",
    "IDSConfig",
    "IDSResult",
    "run_ids",
    "FRLConfig",
    "FRLResult",
    "run_frl",
    "AdaptedBaselineResult",
    "adapt_if_as_grouping",
    "adapt_if_as_intervention",
]
