"""FRL — Falling Rule Lists (Wang & Rudin, AISTATS 2015).

The paper's third baseline.  An FRL is an *ordered* list of IF/THEN rules
whose probability of the positive outcome is monotonically non-increasing
down the list, closed by an else clause.  The original fits the list with a
Bayesian MAP search over orderings; the paper notes this makes FRL "an order
of magnitude slower than IDS".  This implementation uses the standard greedy
approximation of the falling constraint — repeatedly append the
highest-positive-rate rule on the *not-yet-covered* rows, provided its rate
does not exceed the previous rule's — and simulates the extra Bayesian
search cost with a configurable number of candidate re-scoring sweeps
(``ordering_sweeps``), preserving the paper's relative-runtime shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.association import (
    AssociationRule,
    binarize_outcome,
    mine_association_rules,
)
from repro.tabular.table import Table
from repro.utils.timer import Timer


@dataclass(frozen=True)
class FRLConfig:
    """Tunables of the FRL baseline."""

    max_rules: int = 15
    min_support: float = 0.05
    max_length: int = 2
    max_values_per_attribute: int | None = 8
    min_rule_rows: int = 20
    ordering_sweeps: int = 10

    def __post_init__(self) -> None:
        if self.ordering_sweeps < 1:
            raise ValueError("ordering_sweeps must be >= 1")


@dataclass(frozen=True)
class FRLRule:
    """One entry of the falling list.

    ``probability`` is the positive-outcome rate among the rows this rule
    captures (rows not captured by an earlier rule).
    """

    pattern: "AssociationRule"
    probability: float
    captured: int


@dataclass(frozen=True)
class FRLResult:
    """The fitted falling rule list."""

    rules: tuple[FRLRule, ...]
    else_probability: float
    runtime_seconds: float
    candidate_count: int

    def is_falling(self) -> bool:
        """Whether the per-rule probabilities are non-increasing."""
        probs = [r.probability for r in self.rules]
        return all(a >= b for a, b in zip(probs, probs[1:]))


def run_frl(
    table: Table,
    outcome: str,
    attributes: tuple[str, ...],
    config: FRLConfig | None = None,
) -> FRLResult:
    """Fit a falling rule list on ``table``.

    Parameters
    ----------
    table:
        The dataset.
    outcome:
        Outcome attribute (binarised at its mean when continuous).
    attributes:
        Attributes allowed in IF clauses.
    config:
        FRL tunables.
    """
    config = config if config is not None else FRLConfig()
    with Timer() as timer:
        labels = binarize_outcome(table, outcome)
        candidates = mine_association_rules(
            table,
            outcome,
            attributes,
            min_support=config.min_support,
            min_confidence=0.0,
            max_length=config.max_length,
            max_values_per_attribute=config.max_values_per_attribute,
        )
        masks = [rule.pattern.mask(table) for rule in candidates]

        uncovered = np.ones(table.n_rows, dtype=bool)
        rules: list[FRLRule] = []
        previous_probability = 1.0
        available = set(range(len(candidates)))

        while available and len(rules) < config.max_rules:
            best_index, best_prob, best_captured = -1, -1.0, 0
            # The Bayesian MAP search of the original re-scores candidate
            # orderings many times; the sweep loop mirrors that cost profile.
            for _sweep in range(config.ordering_sweeps):
                for index in available:
                    capture = masks[index] & uncovered
                    captured = int(capture.sum())
                    if captured < config.min_rule_rows:
                        continue
                    prob = float(labels[capture].mean())
                    if prob > previous_probability + 1e-12:
                        continue  # would violate the falling constraint
                    if prob > best_prob or (
                        prob == best_prob and captured > best_captured
                    ):
                        best_index, best_prob, best_captured = index, prob, captured
            if best_index < 0:
                break
            base_rate = float(labels[uncovered].mean()) if uncovered.any() else 0.0
            if best_prob <= base_rate:
                break  # no rule beats the else clause any more
            capture = masks[best_index] & uncovered
            rules.append(
                FRLRule(
                    pattern=candidates[best_index],
                    probability=best_prob,
                    captured=int(capture.sum()),
                )
            )
            uncovered &= ~capture
            previous_probability = best_prob
            available.discard(best_index)

        else_probability = (
            float(labels[uncovered].mean()) if uncovered.any() else 0.0
        )

    return FRLResult(
        rules=tuple(rules),
        else_probability=else_probability,
        runtime_seconds=timer.elapsed,
        candidate_count=len(candidates),
    )
