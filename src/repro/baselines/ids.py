"""IDS — Interpretable Decision Sets (Lakkaraju, Bach & Leskovec, KDD 2016).

The paper's second baseline.  IDS selects an *unordered* set of IF/THEN
rules by maximising a non-negative weighted sum of seven submodular
objectives balancing interpretability (few, short, non-overlapping rules)
against accuracy (precision, recall, class coverage).  The original uses
smooth local search; following common practice (and the 1-1/e guarantee for
monotone terms), this implementation uses the greedy maximiser, which is
what the paper's runtime discussion refers to ("IDS leverages submodular
optimization on an unordered set of rules").

Objective terms (paper's f1-f7, normalised to comparable scales):

- f1 size:      ``|S_max| - |R|`` — fewer rules;
- f2 length:    ``L_max*|S_max| - sum length(r)`` — shorter rules;
- f3 cover-overlap: penalise same-class coverage overlap;
- f4 class-overlap: penalise different-class coverage overlap;
- f5 class coverage: every class should have at least one rule;
- f6 precision: penalise incorrectly covered points;
- f7 recall:    reward covered points.

IDS has parameters restricting the fraction of uncovered tuples and the
number of rules; Sec. 7.1 assigns them the same values as FairCap's, which
:class:`IDSConfig` mirrors (``max_rules``, ``min_coverage``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.association import (
    AssociationRule,
    binarize_outcome,
    mine_association_rules,
)
from repro.tabular.table import Table
from repro.utils.errors import ConfigError
from repro.utils.timer import Timer


@dataclass(frozen=True)
class IDSConfig:
    """Tunables of the IDS baseline.

    ``lambdas`` are the seven objective weights (default: equal weights,
    which reproduces the qualitative behaviour; the original paper tunes
    them by grid search).
    """

    max_rules: int = 20
    min_coverage: float = 0.9
    min_support: float = 0.05
    min_confidence: float = 0.5
    max_length: int = 2
    max_values_per_attribute: int | None = 8
    lambdas: tuple[float, ...] = field(default=(1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0))
    target_rules: int | None = None
    """When set, keep adding the best rule (even at non-positive marginal
    gain) until this many rules are selected — Sec. 7.1 assigns IDS "the same
    values" for its rule-count parameter as FairCap's."""

    def __post_init__(self) -> None:
        if len(self.lambdas) != 7:
            raise ConfigError("IDS requires exactly 7 objective weights")
        if any(weight < 0 for weight in self.lambdas):
            raise ConfigError("IDS objective weights must be non-negative")
        if self.target_rules is not None and self.target_rules < 1:
            raise ConfigError("target_rules must be >= 1 when set")


@dataclass(frozen=True)
class IDSResult:
    """Selected decision set plus diagnostics."""

    rules: tuple[AssociationRule, ...]
    objective: float
    coverage: float
    accuracy: float
    runtime_seconds: float
    candidate_count: int


class _IDSObjective:
    """Incremental evaluation of the seven-term IDS objective."""

    def __init__(
        self,
        table: Table,
        labels: np.ndarray,
        candidates: list[AssociationRule],
        config: IDSConfig,
    ) -> None:
        self.config = config
        self.labels = labels
        self.n = table.n_rows
        self.masks = [rule.pattern.mask(table) for rule in candidates]
        self.candidates = candidates
        self.l_max = max((r.length for r in candidates), default=1)
        self.s_max = len(candidates)

    def value(self, indices: list[int]) -> float:
        """Objective value of the rule subset ``indices``."""
        lam = self.config.lambdas
        if not indices:
            return lam[0] * self.s_max + lam[1] * self.l_max * self.s_max
        total = 0.0
        # f1: fewer rules.
        total += lam[0] * (self.s_max - len(indices))
        # f2: shorter rules.
        total += lam[1] * (
            self.l_max * self.s_max
            - sum(self.candidates[i].length for i in indices)
        )
        # f3 / f4: pairwise overlap penalties, normalised by n.
        same_overlap = 0.0
        diff_overlap = 0.0
        for pos, i in enumerate(indices):
            for j in indices[pos + 1:]:
                overlap = float((self.masks[i] & self.masks[j]).sum()) / self.n
                if self.candidates[i].outcome_class == self.candidates[j].outcome_class:
                    same_overlap += overlap
                else:
                    diff_overlap += overlap
        max_pairs = self.s_max * (self.s_max - 1) / 2.0
        total += lam[2] * (max_pairs - same_overlap)
        total += lam[3] * (max_pairs - diff_overlap)
        # f5: each class represented.
        classes = {self.candidates[i].outcome_class for i in indices}
        total += lam[4] * len(classes)
        # f6: precision — penalise incorrect covers (normalised).
        incorrect = 0.0
        for i in indices:
            mask = self.masks[i]
            predicted = self.candidates[i].outcome_class
            incorrect += float((self.labels[mask] != predicted).sum()) / self.n
        total += lam[5] * (len(indices) - incorrect)
        # f7: recall — covered fraction.
        covered = np.zeros(self.n, dtype=bool)
        for i in indices:
            covered |= self.masks[i]
        total += lam[6] * (float(covered.sum()) / self.n) * self.s_max
        return total

    def coverage(self, indices: list[int]) -> float:
        """Covered fraction of the data."""
        if not indices:
            return 0.0
        covered = np.zeros(self.n, dtype=bool)
        for i in indices:
            covered |= self.masks[i]
        return float(covered.sum()) / self.n

    def accuracy(self, indices: list[int]) -> float:
        """Fraction of covered points whose highest-confidence rule is right."""
        if not indices:
            return 0.0
        best_conf = np.full(self.n, -1.0)
        prediction = np.zeros(self.n, dtype=np.int8)
        for i in indices:
            mask = self.masks[i]
            better = mask & (self.candidates[i].confidence > best_conf)
            best_conf[better] = self.candidates[i].confidence
            prediction[better] = self.candidates[i].outcome_class
        covered = best_conf >= 0
        if not covered.any():
            return 0.0
        return float((prediction[covered] == self.labels[covered]).mean())


def run_ids(
    table: Table,
    outcome: str,
    attributes: tuple[str, ...],
    config: IDSConfig | None = None,
) -> IDSResult:
    """Run the IDS baseline on ``table``.

    Parameters
    ----------
    table:
        The dataset.
    outcome:
        Outcome attribute (binarised at its mean when continuous).
    attributes:
        Attributes allowed in IF clauses (IDS does not distinguish mutable
        from immutable — a key difference the paper highlights).
    config:
        IDS tunables.
    """
    config = config if config is not None else IDSConfig()
    with Timer() as timer:
        labels = binarize_outcome(table, outcome)
        candidates = mine_association_rules(
            table,
            outcome,
            attributes,
            min_support=config.min_support,
            min_confidence=config.min_confidence,
            max_length=config.max_length,
            max_values_per_attribute=config.max_values_per_attribute,
        )
        objective = _IDSObjective(table, labels, candidates, config)

        selected: list[int] = []
        remaining = set(range(len(candidates)))
        current_value = objective.value(selected)
        rule_budget = config.max_rules
        if config.target_rules is not None:
            rule_budget = min(config.max_rules, config.target_rules)
        while remaining and len(selected) < rule_budget:
            best_gain, best_index = 0.0, -1
            best_any_gain, best_any_index = -np.inf, -1
            for index in remaining:
                gain = objective.value(selected + [index]) - current_value
                if gain > best_gain:
                    best_gain, best_index = gain, index
                if gain > best_any_gain:
                    best_any_gain, best_any_index = gain, index
            must_cover = objective.coverage(selected) < config.min_coverage
            must_fill = (
                config.target_rules is not None
                and len(selected) < config.target_rules
            )
            if best_index < 0 and must_cover:
                # No positive-gain rule, but the coverage floor is unmet:
                # take the rule adding the most coverage.
                best_index = max(
                    remaining,
                    key=lambda i: objective.coverage(selected + [i]),
                )
            elif best_index < 0 and must_fill:
                best_index = best_any_index
            if best_index < 0:
                break
            selected.append(best_index)
            remaining.discard(best_index)
            current_value = objective.value(selected)

    return IDSResult(
        rules=tuple(candidates[i] for i in selected),
        objective=current_value,
        coverage=objective.coverage(selected),
        accuracy=objective.accuracy(selected),
        runtime_seconds=timer.elapsed,
        candidate_count=len(candidates),
    )
