"""Association-rule substrate shared by the IDS and FRL baselines.

IDS and FRL are *prediction* frameworks over a binary outcome.  Following
Sec. 7.1 of the paper, a continuous outcome (SO salary) is binned at its
mean; rules are ``IF pattern THEN class`` pairs mined from frequent patterns
with their support and confidence.  These rules are deliberately
association-based — no causal adjustment — which is exactly the failure mode
the paper's comparison demonstrates (e.g. the "US + straight → high salary"
rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.mining.apriori import apriori
from repro.mining.patterns import Pattern
from repro.tabular.table import Table
from repro.utils.errors import EstimationError


@dataclass(frozen=True)
class AssociationRule:
    """An ``IF pattern THEN outcome_class`` prediction rule.

    Attributes
    ----------
    pattern:
        The IF clause (a conjunction of predicates).
    outcome_class:
        Predicted class (1 = high/positive outcome).
    support:
        Fraction of rows covered by the pattern.
    confidence:
        Empirical ``P(class | pattern)``.
    """

    pattern: Pattern
    outcome_class: int
    support: float
    confidence: float

    @property
    def length(self) -> int:
        """Number of predicates in the IF clause."""
        return len(self.pattern)


def binarize_outcome(table: Table, outcome: str) -> np.ndarray:
    """Binary labels: 1 where the outcome is >= its mean (Sec. 7.1).

    Outcomes that are already 0/1 are passed through unchanged.
    """
    values = table.values(outcome)
    if values.dtype.kind not in "if":
        raise EstimationError(f"outcome {outcome!r} must be numeric")
    unique = np.unique(values)
    if unique.size <= 2 and set(unique.tolist()) <= {0.0, 1.0}:
        return values.astype(np.int8)
    return (values >= values.mean()).astype(np.int8)


def mine_association_rules(
    table: Table,
    outcome: str,
    attributes: Sequence[str],
    min_support: float = 0.05,
    min_confidence: float = 0.5,
    max_length: int = 2,
    max_values_per_attribute: int | None = 8,
) -> list[AssociationRule]:
    """Mine candidate IF/THEN rules for IDS and FRL.

    Every frequent pattern produces one rule predicting its majority class,
    kept when its confidence clears ``min_confidence``.

    Returns rules sorted by (confidence desc, support desc) for deterministic
    downstream behaviour.
    """
    labels = binarize_outcome(table, outcome)
    frequent = apriori(
        table,
        attributes=attributes,
        min_support=min_support,
        max_length=max_length,
        max_values_per_attribute=max_values_per_attribute,
    )
    rules: list[AssociationRule] = []
    for fp in frequent:
        mask = fp.pattern.mask(table)
        covered = int(mask.sum())
        if covered == 0:
            continue
        positive_rate = float(labels[mask].mean())
        outcome_class = 1 if positive_rate >= 0.5 else 0
        confidence = positive_rate if outcome_class == 1 else 1.0 - positive_rate
        if confidence < min_confidence:
            continue
        rules.append(
            AssociationRule(
                pattern=fp.pattern,
                outcome_class=outcome_class,
                support=covered / table.n_rows,
                confidence=confidence,
            )
        )
    rules.sort(key=lambda r: (-r.confidence, -r.support, str(r.pattern)))
    return rules
