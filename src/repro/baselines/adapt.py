"""Adapting IDS/FRL rules for quantitative comparison (Sec. 7.1).

IDS and FRL emit *prediction* rules, not interventions.  The paper compares
them to FairCap by reinterpreting their IF clauses in two ways:

1. **IF clause as grouping pattern** — the IF clause (restricted to
   immutable attributes) becomes the grouping pattern and FairCap's Step 2
   finds the best intervention for it;
2. **IF clause as intervention pattern** — the IF clause (restricted to
   mutable attributes) becomes the intervention, applied to the entire data
   (empty grouping pattern).

To "address fairness considerations" the baselines are run twice — on the
full dataset and on the protected sub-population — and the rule pools are
merged (Sec. 7.1).  The adapted rules are then evaluated with FairCap's
utility machinery, producing the IDS/FRL rows of Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.baselines.association import AssociationRule
from repro.causal.dag import CausalDAG
from repro.core.config import FairCapConfig
from repro.core.intervention import intervention_items, mine_intervention
from repro.mining.patterns import Pattern
from repro.rules.protected import ProtectedGroup
from repro.rules.rule import PrescriptionRule
from repro.rules.ruleset import RuleSet, RulesetEvaluator, RulesetMetrics
from repro.rules.utility import RuleEvaluator
from repro.tabular.schema import Schema
from repro.tabular.table import Table


@dataclass(frozen=True)
class AdaptedBaselineResult:
    """A baseline rule pool converted into prescription rules and scored."""

    name: str
    ruleset: RuleSet
    metrics: RulesetMetrics
    source_rule_count: int


def merge_rule_pools(
    pools: Sequence[Sequence[AssociationRule]],
) -> list[AssociationRule]:
    """Union of baseline rule pools with pattern-level deduplication."""
    seen: set[Pattern] = set()
    merged: list[AssociationRule] = []
    for pool in pools:
        for rule in pool:
            if rule.pattern not in seen:
                seen.add(rule.pattern)
                merged.append(rule)
    return merged


def _metrics_for(
    table: Table, rules: list[PrescriptionRule], protected: ProtectedGroup
) -> tuple[RuleSet, RulesetMetrics]:
    evaluator = RulesetEvaluator(table, rules, protected)
    return evaluator.subset(range(len(rules))), evaluator.metrics(
        list(range(len(rules)))
    )


def adapt_if_as_grouping(
    name: str,
    if_clauses: Sequence[Pattern],
    table: Table,
    schema: Schema,
    dag: CausalDAG,
    protected: ProtectedGroup,
    config: FairCapConfig | None = None,
) -> AdaptedBaselineResult:
    """Treatment (1): IF clauses as grouping patterns + FairCap Step 2.

    Each IF clause is restricted to the immutable attributes; empty
    restrictions (clauses using only mutable attributes) are dropped.
    """
    config = config if config is not None else FairCapConfig()
    immutable = schema.immutable_names
    groupings: list[Pattern] = []
    seen: set[Pattern] = set()
    for clause in if_clauses:
        restricted = clause.restricted_to(immutable)
        if restricted.is_empty() or restricted in seen:
            continue
        seen.add(restricted)
        groupings.append(restricted)

    evaluator = RuleEvaluator(
        table,
        schema.outcome_name,
        dag,
        protected,
        estimator=config.make_estimator(),
        min_subgroup_size=config.min_subgroup_size,
    )
    items = intervention_items(table, schema, dag, config)
    rules: list[PrescriptionRule] = []
    for grouping in groupings:
        result = mine_intervention(evaluator.context(grouping), items, config)
        if result.best is not None:
            rules.append(result.best)
    ruleset, metrics = _metrics_for(table, rules, protected)
    return AdaptedBaselineResult(
        name=f"{name} (IF clause as grouping pattern)",
        ruleset=ruleset,
        metrics=metrics,
        source_rule_count=len(if_clauses),
    )


def adapt_if_as_intervention(
    name: str,
    if_clauses: Sequence[Pattern],
    table: Table,
    schema: Schema,
    dag: CausalDAG,
    protected: ProtectedGroup,
    config: FairCapConfig | None = None,
) -> AdaptedBaselineResult:
    """Treatment (2): IF clauses as interventions over the entire data.

    Each IF clause is restricted to the mutable attributes and evaluated as
    an intervention with the empty grouping pattern (grouping = all rows).
    """
    config = config if config is not None else FairCapConfig()
    mutable = schema.mutable_names
    interventions: list[Pattern] = []
    seen: set[Pattern] = set()
    for clause in if_clauses:
        restricted = clause.restricted_to(mutable)
        if restricted.is_empty() or restricted in seen:
            continue
        seen.add(restricted)
        interventions.append(restricted)

    evaluator = RuleEvaluator(
        table,
        schema.outcome_name,
        dag,
        protected,
        estimator=config.make_estimator(),
        min_subgroup_size=config.min_subgroup_size,
    )
    context = evaluator.context(Pattern.empty())
    rules: list[PrescriptionRule] = []
    for intervention in interventions:
        rule = context.evaluate(intervention)
        if rule.utility > 0:
            rules.append(rule)
    ruleset, metrics = _metrics_for(table, rules, protected)
    return AdaptedBaselineResult(
        name=f"{name} (IF clause as intervention pattern)",
        ruleset=ruleset,
        metrics=metrics,
        source_rule_count=len(if_clauses),
    )
