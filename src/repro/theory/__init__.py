"""Empirical checkers for the paper's appendix properties (S23)."""

from repro.theory.properties import (
    check_exchange_property,
    check_hereditary_property,
    check_lemma_4_1,
    check_submodularity,
)

__all__ = [
    "check_submodularity",
    "check_hereditary_property",
    "check_exchange_property",
    "check_lemma_4_1",
]
