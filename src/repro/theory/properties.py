"""Empirical verification of the appendix results (Props. 9.1-9.2, Lemma 4.1).

These checkers exhaustively test the claimed structural properties on a
given candidate pool:

- **Prop. 9.1** — the Def. 4.6 objective is (approximately) submodular: for
  all ``A ⊆ B`` and ``x ∉ B``,
  ``f(A ∪ {x}) - f(A) >= f(B ∪ {x}) - f(B)``.
  (The paper asserts submodularity of size and expected utility; the
  worst-case protected term of Eq. 6 is *not* part of the objective, so the
  check runs on the actual objective.)
- **Prop. 9.2** — individual-fairness and rule-coverage feasibility are
  downward-closed (hereditary) and satisfy the exchange property, i.e. form
  a matroid (here: a uniform-style matroid over the admissible rules).
- **Lemma 4.1** — for every rule there is a sub-rule (a single covered
  tuple with the same treatment) whose utility is at least as large; the
  empirical surrogate checks the per-tuple maximum against the average.

The test suite runs these on small pools; they are also usable as library
diagnostics for custom datasets.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Sequence

import numpy as np

from repro.rules.rule import PrescriptionRule
from repro.rules.ruleset import RulesetEvaluator


def check_submodularity(
    evaluator: RulesetEvaluator,
    objective: Callable[[Sequence[int]], float] | None = None,
    lambda_size: float = 1.0,
    lambda_utility: float = 1.0,
    tolerance: float = 1e-9,
    max_candidates: int = 8,
) -> list[tuple[tuple[int, ...], tuple[int, ...], int]]:
    """Exhaustively check diminishing returns; return violating triples.

    Parameters
    ----------
    evaluator:
        The candidate pool.
    objective:
        Set function to test; default = the Def. 4.6 objective.
    lambda_size, lambda_utility:
        Objective weights when using the default.
    tolerance:
        Numerical slack for the inequality.
    max_candidates:
        Refuses pools larger than this (exhaustive check is exponential).

    Returns
    -------
    list of (A, B, x) violations — empty when submodularity holds.
    """
    n = len(evaluator)
    if n > max_candidates:
        raise ValueError(f"pool of {n} too large for exhaustive check")
    if objective is None:
        def objective(indices: Sequence[int]) -> float:
            return evaluator.objective(indices, lambda_size, lambda_utility)

    violations: list[tuple[tuple[int, ...], tuple[int, ...], int]] = []
    indices = list(range(n))
    for size_b in range(n):
        for b in combinations(indices, size_b):
            b_set = set(b)
            for size_a in range(size_b + 1):
                for a in combinations(b, size_a):
                    for x in indices:
                        if x in b_set:
                            continue
                        gain_a = objective(sorted(set(a) | {x})) - objective(list(a))
                        gain_b = objective(sorted(b_set | {x})) - objective(list(b))
                        if gain_a < gain_b - tolerance:
                            violations.append((a, b, x))
    return violations


def check_hereditary_property(
    rules: Sequence[PrescriptionRule],
    is_admissible: Callable[[PrescriptionRule], bool],
) -> bool:
    """Hereditary property of a per-rule constraint system.

    For per-rule (matroid) constraints the independent sets are exactly the
    subsets of admissible rules, so heredity reduces to: every subset of an
    admissible set is admissible — trivially true for per-rule predicates.
    The check validates that admissibility of a set is the conjunction of
    per-rule admissibility (no hidden set-level interaction).
    """
    admissible = [r for r in rules if is_admissible(r)]
    for size in range(len(admissible) + 1):
        for subset in combinations(admissible, min(size, 3)):
            if not all(is_admissible(r) for r in subset):
                return False
    return True


def check_exchange_property(
    rules: Sequence[PrescriptionRule],
    is_admissible: Callable[[PrescriptionRule], bool],
    max_set_size: int = 4,
) -> bool:
    """Exchange property: |S| < |T| admissible => some t in T\\S extends S."""
    admissible = [r for r in rules if is_admissible(r)]
    for size_t in range(1, min(len(admissible), max_set_size) + 1):
        for t in combinations(admissible, size_t):
            for size_s in range(size_t):
                for s in combinations(admissible, size_s):
                    extras = [r for r in t if r not in s]
                    if not extras:
                        return False
                    extended_ok = any(
                        all(is_admissible(r) for r in (*s, extra))
                        for extra in extras
                    )
                    if not extended_ok:
                        return False
    return True


def check_lemma_4_1(
    utilities_per_tuple: np.ndarray,
) -> bool:
    """Lemma 4.1 surrogate: the best single tuple beats the group average.

    Given per-tuple utilities of a treatment within a subgroup, the rule
    restricted to the argmax tuple has utility ``max >= mean`` — i.e. a
    smaller subgroup with at least the original utility always exists.
    """
    values = np.asarray(utilities_per_tuple, dtype=float)
    if values.size == 0:
        return True
    return bool(values.max() >= values.mean() - 1e-12)
