"""Table 3: examined datasets (statistics).

Reports, per dataset: tuple count, attribute count, mutable attribute count,
and the protected group with its data fraction — matching the paper's
Table 3 (SO: 38K/20/10, low-GDP 21.5%; German: 1K/20/15, single females
9.2%).  The statistics come straight from the generated bundles, so this
also validates the generators.
"""

from __future__ import annotations

from repro.datasets.registry import load_dataset
from repro.utils.text import format_percent, format_table


def run_table3(rng: int = 7) -> list[dict[str, object]]:
    """Collect the Table 3 statistics at the paper's dataset sizes."""
    rows = []
    for name in ("stackoverflow", "german"):
        bundle = load_dataset(name, rng=rng)
        rows.append(bundle.stats())
    return rows


def format_table3(rows: list[dict[str, object]]) -> str:
    """Render the Table 3 layout."""
    headers = ["Dataset", "Tuples", "Atts", "Mut Atts", "Protected Group"]
    body = [
        [
            row["dataset"],
            row["tuples"],
            row["attributes"],
            row["mutable_attributes"],
            f"{row['protected_group']} "
            f"({format_percent(float(row['protected_fraction']), 1)} of the data)",
        ]
        for row in rows
    ]
    return format_table(headers, body, title="Table 3: Examined datasets")
