"""Row structures and ASCII rendering shared by the table experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.rules.ruleset import RulesetMetrics
from repro.utils.text import format_float, format_percent, format_table


@dataclass(frozen=True)
class ResultRow:
    """One row of a Table 4/5/6-style comparison."""

    label: str
    n_rules: int
    coverage: float
    coverage_protected: float
    exp_utility: float
    exp_utility_non_protected: float
    exp_utility_protected: float
    unfairness: float
    runtime_seconds: float = float("nan")


def row_from_metrics(
    label: str, metrics: RulesetMetrics, runtime_seconds: float = float("nan")
) -> ResultRow:
    """Build a :class:`ResultRow` from ruleset metrics."""
    return ResultRow(
        label=label,
        n_rules=metrics.n_rules,
        coverage=metrics.coverage,
        coverage_protected=metrics.protected_coverage,
        exp_utility=metrics.expected_utility,
        exp_utility_non_protected=metrics.expected_utility_non_protected,
        exp_utility_protected=metrics.expected_utility_protected,
        unfairness=metrics.unfairness,
        runtime_seconds=runtime_seconds,
    )


def format_rows(
    rows: list[ResultRow],
    title: str,
    utility_decimals: int = 2,
    include_runtime: bool = False,
) -> str:
    """Render rows in the paper's Table 4 column layout."""
    headers = [
        "setting", "# rules", "coverage", "coverage pro", "exp utility",
        "exp utility non-pro", "exp utility pro", "unfairness",
    ]
    if include_runtime:
        headers.append("time (s)")
    body = []
    for row in rows:
        cells: list[object] = [
            row.label,
            row.n_rules,
            format_percent(row.coverage),
            format_percent(row.coverage_protected),
            format_float(row.exp_utility, utility_decimals),
            format_float(row.exp_utility_non_protected, utility_decimals),
            format_float(row.exp_utility_protected, utility_decimals),
            format_float(row.unfairness, utility_decimals),
        ]
        if include_runtime:
            cells.append(
                "-" if math.isnan(row.runtime_seconds)
                else format_float(row.runtime_seconds, 1)
            )
        body.append(cells)
    return format_table(headers, body, title=title)
