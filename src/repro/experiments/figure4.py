"""Figure 4: runtime as a function of dataset size (SO).

Runs FairCap (all canonical variants) plus the IDS and FRL baselines on 25%,
50%, 75% and 100% samples of the dataset.

Expected shape (Sec. 7.3): runtime grows roughly linearly with the dataset
size for every method; FairCap is comparable to IDS in some configurations;
FRL is the slowest (an order of magnitude above IDS in the paper, driven by
its ordering search).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.frl import FRLConfig, run_frl
from repro.baselines.ids import IDSConfig, run_ids
from repro.core.faircap import FairCap
from repro.experiments.settings import ExperimentSettings
from repro.utils.text import format_float, format_table
from repro.utils.timer import Timer

DEFAULT_FRACTIONS = (0.25, 0.5, 0.75, 1.0)


@dataclass(frozen=True)
class Figure4Series:
    """Runtime (seconds) of one method across dataset fractions."""

    method: str
    seconds: tuple[float, ...]


@dataclass(frozen=True)
class Figure4Result:
    """All runtime series, one per method."""

    dataset: str
    fractions: tuple[float, ...]
    series: tuple[Figure4Series, ...]


def run_figure4(
    dataset: str = "stackoverflow",
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    settings: ExperimentSettings | None = None,
    include_baselines: bool = True,
    variant_names: tuple[str, ...] | None = None,
) -> Figure4Result:
    """Measure runtime across dataset fractions for FairCap and baselines."""
    settings = settings or ExperimentSettings.from_environment()
    bundle = settings.load(dataset)
    variants = settings.variants_for(bundle)
    if variant_names is not None:
        variants = {name: variants[name] for name in variant_names}

    attributes = tuple(n for n in bundle.schema.names if n != bundle.outcome)
    timings: dict[str, list[float]] = {name: [] for name in variants}
    if include_baselines:
        timings["IDS"] = []
        timings["FRL"] = []

    for fraction in fractions:
        table = bundle.table.sample_fraction(fraction, rng=settings.seed)
        for name, variant in variants.items():
            config = settings.config_for(bundle, variant)
            with Timer() as timer:
                FairCap(config).run(table, bundle.schema, bundle.dag, bundle.protected)
            timings[name].append(timer.elapsed)
        if include_baselines:
            ids_result = run_ids(
                table, bundle.outcome, attributes, IDSConfig(target_rules=10)
            )
            timings["IDS"].append(ids_result.runtime_seconds)
            frl_result = run_frl(table, bundle.outcome, attributes, FRLConfig())
            timings["FRL"].append(frl_result.runtime_seconds)

    series = tuple(
        Figure4Series(method=name, seconds=tuple(values))
        for name, values in timings.items()
    )
    return Figure4Result(dataset=dataset, fractions=tuple(fractions), series=series)


def format_figure4(result: Figure4Result) -> str:
    """Render the runtime-vs-size series of Figure 4."""
    headers = ["method"] + [f"{f:.0%}" for f in result.fractions]
    body = [
        [s.method, *(format_float(v, 2) for v in s.seconds)] for s in result.series
    ]
    return format_table(
        headers, body,
        title=(
            f"Figure 4 [{result.dataset}]: runtime (s) as a function of "
            "dataset size"
        ),
    )
