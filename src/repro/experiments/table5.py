"""Table 5: effect of the fairness threshold (SP, Stack Overflow).

Sweeps the statistical-parity threshold ``epsilon`` over the paper's grid
(2.5K / 5K / 10K / 20K) for both group and individual SP fairness.

Expected shape (Sec. 7.3): unfairness of the returned ruleset grows with
``epsilon``; the overall expected utility grows with ``epsilon`` (looser
constraints admit higher-utility unfair rules) while protected utility
stagnates or decreases; under group fairness the unfairness always stays
below the threshold.

Note on the runtime column: all epsilon runs share one CATE memo, so the
first row is cold-cache and later rows are warm-cache; rule/metric outputs
are cache-independent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.faircap import FairCap
from repro.core.variants import ProblemVariant
from repro.experiments.reporting import ResultRow, format_rows, row_from_metrics
from repro.experiments.settings import ExperimentSettings
from repro.fairness.constraints import FairnessConstraint, FairnessKind, FairnessScope
from repro.utils.timer import Timer

DEFAULT_EPSILONS = (2_500.0, 5_000.0, 10_000.0, 20_000.0)


@dataclass(frozen=True)
class Table5Result:
    """Threshold-sweep rows (group block then individual block)."""

    dataset: str
    epsilons: tuple[float, ...]
    rows: tuple[ResultRow, ...]


def run_table5(
    dataset: str = "stackoverflow",
    epsilons: tuple[float, ...] = DEFAULT_EPSILONS,
    settings: ExperimentSettings | None = None,
) -> Table5Result:
    """Run the epsilon sweep for group and individual SP fairness."""
    settings = settings or ExperimentSettings.from_environment()
    bundle = settings.load(dataset)

    rows: list[ResultRow] = []
    # Shared CATE memo: every epsilon re-estimates the same candidates, so
    # all runs after the first are mostly cache hits (identical numbers).
    cache = None
    for scope, label in (
        (FairnessScope.GROUP, "Group SP"),
        (FairnessScope.INDIVIDUAL, "Individual SP"),
    ):
        for epsilon in epsilons:
            variant = ProblemVariant(
                fairness=FairnessConstraint(
                    FairnessKind.STATISTICAL_PARITY, scope, epsilon
                )
            )
            config = settings.config_for(bundle, variant)
            if cache is None:
                cache = config.make_cache()
            with Timer() as timer:
                result = FairCap(config, cache=cache).run(
                    bundle.table, bundle.schema, bundle.dag, bundle.protected
                )
            rows.append(
                row_from_metrics(
                    f"{label} ({epsilon / 1000:g}K)", result.metrics, timer.elapsed
                )
            )
    return Table5Result(dataset=dataset, epsilons=tuple(epsilons), rows=tuple(rows))


def format_table5(result: Table5Result) -> str:
    """Render the Table 5 layout."""
    return format_rows(
        list(result.rows),
        f"Table 5 [{result.dataset}]: comparison of solutions in terms of fairness",
        utility_decimals=1,
        include_runtime=True,
    )
