"""The Sec. 6 case study: categorised example rules in natural language.

The paper presents, per configuration, three example rules "chosen by
randomly picking one from each category (one that favors the protected
group, one that favors the non-protected, and another that is more
balanced)".  :func:`categorize_rules` reproduces that categorisation and
:func:`render_case_study` the boxed presentation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rules.rule import PrescriptionRule
from repro.rules.ruleset import RuleSet
from repro.rules.templates import RuleTemplates, describe_rule
from repro.utils.rng import ensure_rng

FAVORS_PROTECTED = "favors_protected"
FAVORS_NON_PROTECTED = "favors_non_protected"
BALANCED = "balanced"


@dataclass(frozen=True)
class CaseStudySelection:
    """One example rule per category (None when the category is empty)."""

    favors_protected: PrescriptionRule | None
    favors_non_protected: PrescriptionRule | None
    balanced: PrescriptionRule | None

    def rules(self) -> list[PrescriptionRule]:
        """The selected rules, skipping empty categories."""
        return [
            rule
            for rule in (
                self.favors_non_protected, self.balanced, self.favors_protected,
            )
            if rule is not None
        ]


def categorize_rules(
    ruleset: RuleSet, balance_tolerance: float = 0.2
) -> dict[str, list[PrescriptionRule]]:
    """Split rules by whom they favour.

    A rule is *balanced* when the protected/non-protected utilities differ
    by at most ``balance_tolerance`` relative to their larger magnitude;
    otherwise it favours whichever group gains more.
    """
    categories: dict[str, list[PrescriptionRule]] = {
        FAVORS_PROTECTED: [],
        FAVORS_NON_PROTECTED: [],
        BALANCED: [],
    }
    for rule in ruleset:
        scale = max(abs(rule.utility_protected), abs(rule.utility_non_protected))
        if scale == 0:
            categories[BALANCED].append(rule)
            continue
        gap = (rule.utility_non_protected - rule.utility_protected) / scale
        if abs(gap) <= balance_tolerance:
            categories[BALANCED].append(rule)
        elif gap > 0:
            categories[FAVORS_NON_PROTECTED].append(rule)
        else:
            categories[FAVORS_PROTECTED].append(rule)
    return categories


def pick_case_study_rules(
    ruleset: RuleSet,
    rng: int | np.random.Generator | None = None,
    balance_tolerance: float = 0.2,
) -> CaseStudySelection:
    """Randomly pick one rule from each category (paper Sec. 6)."""
    generator = ensure_rng(rng)
    categories = categorize_rules(ruleset, balance_tolerance)

    def pick(name: str) -> PrescriptionRule | None:
        pool = categories[name]
        if not pool:
            return None
        return pool[int(generator.integers(0, len(pool)))]

    return CaseStudySelection(
        favors_protected=pick(FAVORS_PROTECTED),
        favors_non_protected=pick(FAVORS_NON_PROTECTED),
        balanced=pick(BALANCED),
    )


def render_case_study(
    title: str,
    ruleset: RuleSet,
    templates: RuleTemplates | None = None,
    rng: int | np.random.Generator | None = None,
    utility_format: str = "{:,.0f}",
) -> str:
    """Render the paper's boxed case-study presentation.

    Example output::

        3 Selected Rules out of 11 for SO (SP group fairness):
        > For individuals aged 24-34, pursue an undergraduate major in CS
          (exp utility protected: 10,292, exp utility non-protected: 22,586).
        ...
    """
    selection = pick_case_study_rules(ruleset, rng=rng)
    chosen = selection.rules()
    lines = [f"{len(chosen)} Selected Rules out of {ruleset.size} for {title}:"]
    for rule in chosen:
        lines.append(
            "> " + describe_rule(rule, templates, utility_format=utility_format)
        )
    return "\n".join(lines)
