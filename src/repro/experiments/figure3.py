"""Figure 3: runtime of the FairCap algorithm broken down by step (SO).

Runs every canonical variant and reports the wall-clock seconds of the three
phases (group mining / treatment mining / greedy selection).

Expected shape (Sec. 7.3): group mining is negligible (<2s in the paper);
treatment mining dominates everywhere; the unconstrained setting is the
slowest overall; rule-coverage settings are the fastest because coverage
pruning shrinks the grouping-pattern pool.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.faircap import (
    STEP_GREEDY,
    STEP_GROUP_MINING,
    STEP_TREATMENT_MINING,
    FairCap,
)
from repro.experiments.settings import ExperimentSettings
from repro.utils.text import format_float, format_table


@dataclass(frozen=True)
class Figure3Row:
    """Per-variant step timings (seconds)."""

    setting: str
    group_mining: float
    treatment_mining: float
    greedy_selection: float

    @property
    def total(self) -> float:
        return self.group_mining + self.treatment_mining + self.greedy_selection


@dataclass(frozen=True)
class Figure3Result:
    """All step-breakdown rows."""

    dataset: str
    rows: tuple[Figure3Row, ...]


def run_figure3(
    dataset: str = "stackoverflow",
    settings: ExperimentSettings | None = None,
) -> Figure3Result:
    """Measure the per-step runtime of every canonical variant."""
    settings = settings or ExperimentSettings.from_environment()
    bundle = settings.load(dataset)
    variants = settings.variants_for(bundle)

    rows: list[Figure3Row] = []
    for name, variant in variants.items():
        config = settings.config_for(bundle, variant)
        result = FairCap(config).run(
            bundle.table, bundle.schema, bundle.dag, bundle.protected
        )
        timings = result.timings
        rows.append(
            Figure3Row(
                setting=name,
                group_mining=timings.get(STEP_GROUP_MINING, 0.0),
                treatment_mining=timings.get(STEP_TREATMENT_MINING, 0.0),
                greedy_selection=timings.get(STEP_GREEDY, 0.0),
            )
        )
    return Figure3Result(dataset=dataset, rows=tuple(rows))


def format_figure3(result: Figure3Result) -> str:
    """Render the per-step runtime series of Figure 3."""
    headers = [
        "setting", "group mining (s)", "treatment mining (s)",
        "greedy selection (s)", "total (s)",
    ]
    body = [
        [
            row.setting,
            format_float(row.group_mining, 2),
            format_float(row.treatment_mining, 2),
            format_float(row.greedy_selection, 2),
            format_float(row.total, 2),
        ]
        for row in result.rows
    ]
    return format_table(
        headers, body,
        title=f"Figure 3 [{result.dataset}]: runtime by step of FairCap",
    )
