"""Figure 5: runtime vs number of mutable and immutable attributes (SO).

Two sweeps mirroring the paper's panels:

- fix the immutable attributes (all 10) and grow the mutable set from 2 to
  6 — the intervention lattice grows exponentially;
- fix the mutable attributes (6) and grow the immutable set from 5 to 10 —
  the grouping-pattern pool grows.

Expected shape (Sec. 7.3): both sweeps increase FairCap's runtime with
similar impact; IDS and FRL runtimes grow only slightly with the attribute
count (they do not distinguish mutable from immutable).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.baselines.frl import FRLConfig, run_frl
from repro.baselines.ids import IDSConfig, run_ids
from repro.core.faircap import FairCap
from repro.experiments.settings import ExperimentSettings
from repro.utils.text import format_float, format_table
from repro.utils.timer import Timer


@dataclass(frozen=True)
class Figure5Point:
    """Runtime of one method at one attribute configuration."""

    n_immutable: int
    n_mutable: int
    method: str
    seconds: float


@dataclass(frozen=True)
class Figure5Result:
    """All sweep points (mutable sweep then immutable sweep)."""

    dataset: str
    points: tuple[Figure5Point, ...]


def _measure(
    bundle, settings: ExperimentSettings, immutables: tuple[str, ...],
    mutables: tuple[str, ...], methods: tuple[str, ...],
) -> list[Figure5Point]:
    variants = settings.variants_for(bundle)
    points: list[Figure5Point] = []
    faircap_variants = {
        "No constraint": variants["No constraints"],
        "Group fairness": variants["Group fairness"],
        "Indiv fairness": variants["Individual fairness"],
    }
    rule_attrs = immutables + mutables
    for method in methods:
        if method in faircap_variants:
            config = replace(
                settings.config_for(bundle, faircap_variants[method]),
                grouping_attributes=immutables,
                intervention_attributes=mutables,
            )
            with Timer() as timer:
                FairCap(config).run(
                    bundle.table, bundle.schema, bundle.dag, bundle.protected
                )
            seconds = timer.elapsed
        elif method == "IDS":
            seconds = run_ids(
                bundle.table, bundle.outcome, rule_attrs, IDSConfig(target_rules=10)
            ).runtime_seconds
        else:  # FRL
            seconds = run_frl(
                bundle.table, bundle.outcome, rule_attrs, FRLConfig()
            ).runtime_seconds
        points.append(
            Figure5Point(
                n_immutable=len(immutables),
                n_mutable=len(mutables),
                method=method,
                seconds=seconds,
            )
        )
    return points


def run_figure5(
    dataset: str = "stackoverflow",
    settings: ExperimentSettings | None = None,
    mutable_counts: tuple[int, ...] = (2, 3, 4, 5, 6),
    immutable_counts: tuple[int, ...] = (5, 6, 7, 8, 9, 10),
    include_baselines: bool = True,
) -> Figure5Result:
    """Run both attribute-count sweeps."""
    settings = settings or ExperimentSettings.from_environment()
    bundle = settings.load(dataset)
    all_immutable = bundle.schema.immutable_names
    all_mutable = bundle.schema.mutable_names
    methods: tuple[str, ...] = ("No constraint", "Group fairness", "Indiv fairness")
    if include_baselines:
        methods = methods + ("IDS", "FRL")

    points: list[Figure5Point] = []
    # Panel 1: all immutables, growing mutables.
    for k in mutable_counts:
        points.extend(
            _measure(bundle, settings, all_immutable, all_mutable[:k], methods)
        )
    # Panel 2: growing immutables, fixed mutables.
    fixed_mutables = all_mutable[: max(mutable_counts)]
    for k in immutable_counts:
        points.extend(
            _measure(bundle, settings, all_immutable[:k], fixed_mutables, methods)
        )
    return Figure5Result(dataset=dataset, points=tuple(points))


def format_figure5(result: Figure5Result) -> str:
    """Render both panels of Figure 5."""
    headers = ["immutable", "mutable", "method", "time (s)"]
    body = [
        [p.n_immutable, p.n_mutable, p.method, format_float(p.seconds, 2)]
        for p in result.points
    ]
    return format_table(
        headers, body,
        title=(
            f"Figure 5 [{result.dataset}]: runtime vs number of mutable and "
            "immutable attributes"
        ),
    )
