"""Shared experiment settings and configuration factories.

The paper runs on 38K (SO) and 1K (German) rows on a CloudLab server; this
reproduction defaults to laptop-friendly sizes that preserve every
qualitative shape:

- Stack Overflow: 6,000 rows (``REPRO_SO_N`` overrides; ``REPRO_FULL=1``
  selects the paper's 38,000);
- German Credit: 4,000 rows — deliberately *larger* than the paper's 1,000
  because the synthetic binary outcome needs more rows for stable
  protected-group CATEs (~85 protected rows at n=1000 give +/-0.4 noise on a
  0.3-scale effect); the loader default remains 1,000 for Table 3 fidelity.

Experiment configs follow the paper's defaults (Sec. 6): Apriori threshold
0.1, SP epsilon $10k and coverage 0.5 for SO, BGL tau 0.1 and coverage 0.3
for German.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.config import FairCapConfig
from repro.core.variants import ProblemVariant, canonical_variants
from repro.datasets.bundle import DatasetBundle
from repro.datasets.registry import load_dataset

PAPER_SO_N = 38_000
PAPER_GERMAN_N = 1_000
DEFAULT_SO_N = 6_000
DEFAULT_GERMAN_N = 4_000
DEFAULT_SEED = 7


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return int(raw)


@dataclass(frozen=True)
class ExperimentSettings:
    """Row counts, seed, worker count, and per-dataset constraint defaults.

    ``n_workers``/``executor`` select the Step-2 execution strategy for
    every experiment driver (see :mod:`repro.parallel`); results are
    identical for any combination — only runtime changes.  ``executor`` of
    ``"auto"`` resolves to the process executor when ``n_workers`` asks for
    parallelism and the serial reference otherwise.
    """

    so_n: int
    german_n: int
    seed: int
    n_workers: int = 1
    executor: str = "auto"
    cache_size: int | None = None
    """CATE memo bound; ``None`` = the FairCapConfig default, ``0`` disables
    caching entirely (cache-free, paper-methodology-comparable runtimes)."""
    n_override: int | None = None
    """Explicit row-count override (the CLI's ``--n``); applies to every
    dataset including scenario worlds.  ``None`` = per-dataset defaults."""

    @classmethod
    def from_environment(cls) -> "ExperimentSettings":
        """Build settings from ``REPRO_*`` environment variables."""
        if os.environ.get("REPRO_FULL") == "1":
            so_n, german_n = PAPER_SO_N, 4 * PAPER_GERMAN_N
        else:
            so_n = _env_int("REPRO_SO_N", DEFAULT_SO_N)
            german_n = _env_int("REPRO_GERMAN_N", DEFAULT_GERMAN_N)
        cache_raw = os.environ.get("REPRO_CACHE_SIZE")
        return cls(
            so_n=so_n,
            german_n=german_n,
            seed=_env_int("REPRO_SEED", DEFAULT_SEED),
            n_workers=_env_int("REPRO_WORKERS", 1),
            executor=os.environ.get("REPRO_EXECUTOR", "auto"),
            cache_size=int(cache_raw) if cache_raw is not None else None,
        )

    def resolved_executor(self) -> str:
        """The concrete executor kind behind an ``"auto"`` spelling."""
        if self.executor != "auto":
            return self.executor
        return "process" if self.n_workers != 1 else "serial"

    def rows_for(self, dataset: str) -> int:
        """Experiment row count for ``dataset``."""
        if dataset == "stackoverflow":
            return self.so_n
        if dataset == "german":
            return self.german_n
        from repro.scenarios.catalog import DEFAULT_ROWS, is_scenario_name

        if is_scenario_name(dataset):
            return self.n_override if self.n_override is not None else DEFAULT_ROWS
        return self.german_n

    def load(self, dataset: str) -> DatasetBundle:
        """Load ``dataset`` at the experiment scale."""
        return load_dataset(dataset, n=self.rows_for(dataset), rng=self.seed)

    # -- constraint defaults (paper Sec. 6) -----------------------------------

    def variants_for(self, bundle: DatasetBundle) -> dict[str, ProblemVariant]:
        """The nine canonical variants with the dataset's default thresholds."""
        theta = bundle.default_coverage_theta
        return canonical_variants(
            bundle.fairness_kind,
            bundle.default_fairness_threshold,
            theta=theta,
            theta_protected=theta,
        )

    def config_for(
        self, bundle: DatasetBundle, variant: ProblemVariant
    ) -> FairCapConfig:
        """FairCap config with the paper's defaults for this dataset."""
        extra = {} if self.cache_size is None else {"cache_size": self.cache_size}
        return FairCapConfig(
            variant=variant,
            apriori_min_support=0.1,
            max_grouping_size=2,
            max_intervention_size=2,
            max_values_per_attribute=5,
            min_subgroup_size=10,
            executor=self.resolved_executor(),
            n_workers=self.n_workers,
            **extra,
        )
