"""Experiment harness (S22): one module per paper table / figure.

Each module exposes ``run_*`` returning structured rows and ``format_*``
rendering them as the paper prints them.  The benchmarks under
``benchmarks/`` are thin wrappers over these functions.

Scale notes: by default the harness runs on scaled-down synthetic datasets
(environment variables ``REPRO_SO_N`` / ``REPRO_GERMAN_N`` override the row
counts; ``REPRO_FULL=1`` selects the paper's full sizes).  EXPERIMENTS.md
records paper-vs-measured values.
"""

from repro.experiments.settings import ExperimentSettings
from repro.experiments.reporting import ResultRow, format_rows, row_from_metrics
from repro.experiments.table3 import format_table3, run_table3
from repro.experiments.table4 import format_table4, run_table4
from repro.experiments.table5 import format_table5, run_table5
from repro.experiments.table6 import format_table6, run_table6
from repro.experiments.figure3 import format_figure3, run_figure3
from repro.experiments.figure4 import format_figure4, run_figure4
from repro.experiments.figure5 import format_figure5, run_figure5
from repro.experiments.apriori_sweep import format_apriori_sweep, run_apriori_sweep

__all__ = [
    "ExperimentSettings",
    "ResultRow",
    "format_rows",
    "row_from_metrics",
    "run_table3",
    "format_table3",
    "run_table4",
    "format_table4",
    "run_table5",
    "format_table5",
    "run_table6",
    "format_table6",
    "run_figure3",
    "format_figure3",
    "run_figure4",
    "format_figure4",
    "run_figure5",
    "format_figure5",
    "run_apriori_sweep",
    "format_apriori_sweep",
]
