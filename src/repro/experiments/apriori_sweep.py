"""Apriori-threshold sweep (Sec. 7.3, "Apriori Threshold").

Sweeps the Step-1 support threshold ``tau`` and reports the number of mined
grouping patterns, runtime, and the resulting ruleset's utility/unfairness.

Expected shape: higher ``tau`` -> fewer grouping patterns -> lower runtime,
but also lower utility (and often worse fairness); the paper recommends the
default 0.1.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.faircap import FairCap
from repro.experiments.settings import ExperimentSettings
from repro.utils.text import format_float, format_percent, format_table
from repro.utils.timer import Timer

DEFAULT_TAUS = (0.05, 0.1, 0.2, 0.3)


@dataclass(frozen=True)
class AprioriSweepRow:
    """One tau setting's outcome."""

    tau: float
    n_grouping_patterns: int
    n_rules: int
    coverage: float
    expected_utility: float
    unfairness: float
    seconds: float


@dataclass(frozen=True)
class AprioriSweepResult:
    """All sweep rows."""

    dataset: str
    rows: tuple[AprioriSweepRow, ...]


def run_apriori_sweep(
    dataset: str = "stackoverflow",
    taus: tuple[float, ...] = DEFAULT_TAUS,
    settings: ExperimentSettings | None = None,
    variant_name: str = "Group fairness",
) -> AprioriSweepResult:
    """Run FairCap at each Apriori threshold."""
    settings = settings or ExperimentSettings.from_environment()
    bundle = settings.load(dataset)
    variant = settings.variants_for(bundle)[variant_name]

    rows: list[AprioriSweepRow] = []
    for tau in taus:
        config = replace(
            settings.config_for(bundle, variant), apriori_min_support=tau
        )
        with Timer() as timer:
            result = FairCap(config).run(
                bundle.table, bundle.schema, bundle.dag, bundle.protected
            )
        rows.append(
            AprioriSweepRow(
                tau=tau,
                n_grouping_patterns=len(result.grouping_patterns),
                n_rules=result.metrics.n_rules,
                coverage=result.metrics.coverage,
                expected_utility=result.metrics.expected_utility,
                unfairness=result.metrics.unfairness,
                seconds=timer.elapsed,
            )
        )
    return AprioriSweepResult(dataset=dataset, rows=tuple(rows))


def format_apriori_sweep(result: AprioriSweepResult) -> str:
    """Render the sweep."""
    headers = [
        "tau", "grouping patterns", "# rules", "coverage", "exp utility",
        "unfairness", "time (s)",
    ]
    body = [
        [
            f"{row.tau:g}",
            row.n_grouping_patterns,
            row.n_rules,
            format_percent(row.coverage),
            format_float(row.expected_utility, 1),
            format_float(row.unfairness, 1),
            format_float(row.seconds, 2),
        ]
        for row in result.rows
    ]
    return format_table(
        headers, body,
        title=f"Apriori threshold sweep [{result.dataset}] (Sec. 7.3)",
    )
