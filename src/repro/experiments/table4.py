"""Table 4: comparison of solutions across constraint variants + baselines.

For one dataset, runs FairCap under the nine canonical constraint variants
(Sec. 4.7 / Figure 2) and the four IDS/FRL adaptations of Sec. 7.1, and
reports size, coverage (overall / protected), expected utility (overall /
non-protected / protected) and the unfairness score.

Expected shape (paper, Sec. 6-7.2):

- "No constraints" maximises expected utility but with the largest
  unfairness;
- group fairness caps unfairness at the threshold with a modest utility
  cost; individual fairness and rule coverage cost more utility;
- rule-coverage variants select the fewest rules;
- the IDS/FRL adaptations deliver lower utility for both groups than
  FairCap.

Note on the runtime column: the variants share one CATE memo (see below),
so the first variant reports a cold-cache time and later variants report
warm-cache times.  Rule/metric outputs are cache-independent; for
standalone per-variant runtimes use Figure 3/4, which run each variant
with its own fresh cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.adapt import (
    adapt_if_as_grouping,
    adapt_if_as_intervention,
    merge_rule_pools,
)
from repro.baselines.frl import FRLConfig, run_frl
from repro.baselines.ids import IDSConfig, run_ids
from repro.core.faircap import FairCap
from repro.datasets.bundle import DatasetBundle
from repro.experiments.reporting import ResultRow, format_rows, row_from_metrics
from repro.experiments.settings import ExperimentSettings
from repro.utils.timer import Timer


@dataclass(frozen=True)
class Table4Result:
    """All rows of one dataset's Table 4 block."""

    dataset: str
    fairness_kind: str
    rows: tuple[ResultRow, ...]


def _baseline_if_clauses(
    bundle: DatasetBundle, algorithm: str, max_rules: int
) -> list:
    """Run IDS or FRL twice (full data + protected-only) and merge IF clauses.

    Sec. 7.1: "we run the baseline algorithms twice: once on the entire
    dataset ... and again solely on the tuples belonging to the protected
    population".
    """
    attributes = tuple(
        name for name in bundle.schema.names if name != bundle.outcome
    )
    protected_table = bundle.table.filter(bundle.protected.mask(bundle.table))
    pools = []
    for table in (bundle.table, protected_table):
        if algorithm == "IDS":
            result = run_ids(
                table,
                bundle.outcome,
                attributes,
                IDSConfig(target_rules=max_rules // 2, max_rules=max_rules),
            )
            pools.append([r for r in result.rules])
        else:
            result = run_frl(
                table, bundle.outcome, attributes, FRLConfig(max_rules=max_rules // 2)
            )
            pools.append([r.pattern for r in result.rules])
    merged = merge_rule_pools(pools)
    return [rule.pattern for rule in merged]


def run_table4(
    dataset: str = "stackoverflow",
    settings: ExperimentSettings | None = None,
    include_baselines: bool = True,
) -> Table4Result:
    """Run the full Table 4 block for ``dataset``."""
    settings = settings or ExperimentSettings.from_environment()
    bundle = settings.load(dataset)
    variants = settings.variants_for(bundle)

    rows: list[ResultRow] = []
    # One content-addressed CATE memo for all nine variants: variants change
    # rule *selection*, not estimation, so most of each run after the first
    # is answered from cache (identical numbers, far less OLS work).
    cache = None
    for name, variant in variants.items():
        config = settings.config_for(bundle, variant)
        if cache is None:
            cache = config.make_cache()
        with Timer() as timer:
            result = FairCap(config, cache=cache).run(
                bundle.table, bundle.schema, bundle.dag, bundle.protected
            )
        rows.append(row_from_metrics(name, result.metrics, timer.elapsed))

    if include_baselines:
        base_config = settings.config_for(bundle, variants["No constraints"])
        for algorithm in ("IDS", "FRL"):
            clauses = _baseline_if_clauses(bundle, algorithm, base_config.max_rules)
            with Timer() as timer:
                as_grouping = adapt_if_as_grouping(
                    algorithm, clauses, bundle.table, bundle.schema,
                    bundle.dag, bundle.protected, base_config,
                )
            rows.append(
                row_from_metrics(as_grouping.name, as_grouping.metrics, timer.elapsed)
            )
            with Timer() as timer:
                as_intervention = adapt_if_as_intervention(
                    algorithm, clauses, bundle.table, bundle.schema,
                    bundle.dag, bundle.protected, base_config,
                )
            rows.append(
                row_from_metrics(
                    as_intervention.name, as_intervention.metrics, timer.elapsed
                )
            )

    return Table4Result(
        dataset=dataset, fairness_kind=bundle.fairness_kind, rows=tuple(rows)
    )


def format_table4(result: Table4Result) -> str:
    """Render one dataset's Table 4 block."""
    decimals = 2 if result.dataset == "german" else 1
    title = (
        f"Table 4 [{result.dataset}] ({result.fairness_kind} fairness): "
        "comparison of solutions"
    )
    return format_rows(
        list(result.rows), title, utility_decimals=decimals, include_runtime=True
    )
