"""Table 6: robustness to the causal DAG.

Runs FairCap (group fairness + group coverage, the paper's setting) under
five causal DAGs: the dataset's original DAG, the synthetic 1-layer and
2-layer simplifications (:mod:`repro.causal.dagbuilders`), and a DAG
discovered by the PC algorithm.

Expected shape (Sec. 7.2.1): expected utility is broadly stable across DAGs
on Stack Overflow; German shows more variability, with the original and PC
DAGs achieving the highest coverage and utility.

Note on the runtime column: the DAG variants share one CATE memo (keys are
adjustment sets, not DAGs), so the first row is cold-cache and later rows
partially warm; rule/metric outputs are cache-independent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.causal.dagbuilders import named_dag_variants
from repro.causal.discovery import pc_dag
from repro.core.faircap import FairCap
from repro.experiments.reporting import ResultRow, format_rows, row_from_metrics
from repro.experiments.settings import ExperimentSettings
from repro.utils.timer import Timer


@dataclass(frozen=True)
class Table6Result:
    """Per-DAG rows for one dataset."""

    dataset: str
    fairness_kind: str
    rows: tuple[ResultRow, ...]


def run_table6(
    dataset: str = "stackoverflow",
    settings: ExperimentSettings | None = None,
    pc_sample_rows: int = 3_000,
    pc_alpha: float = 0.01,
    pc_max_cond_size: int = 1,
) -> Table6Result:
    """Run the DAG-robustness comparison for ``dataset``.

    PC discovery runs on a row subsample (``pc_sample_rows``) with a small
    conditioning-set cap — the skeleton phase is the expensive part and the
    Table 6 conclusion only needs *a* data-driven DAG, not a deep search.
    """
    settings = settings or ExperimentSettings.from_environment()
    bundle = settings.load(dataset)
    variants = settings.variants_for(bundle)
    variant = variants["Group coverage, Group fairness"]

    pc_table = bundle.table
    if bundle.table.n_rows > pc_sample_rows:
        pc_table = bundle.table.sample_fraction(
            pc_sample_rows / bundle.table.n_rows, rng=settings.seed
        )
    discovered = pc_dag(
        pc_table,
        outcome=bundle.outcome,
        alpha=pc_alpha,
        max_cond_size=pc_max_cond_size,
    )

    dags = named_dag_variants(bundle.schema, bundle.dag, pc=discovered)
    rows: list[ResultRow] = []
    # Shared CATE memo across DAG variants: the cache key is the adjustment
    # set (not the DAG), so two DAGs implying the same adjustment for a
    # candidate share the estimate — which is exactly the same computation.
    cache = None
    for label, dag in dags.items():
        config = settings.config_for(bundle, variant)
        if cache is None:
            cache = config.make_cache()
        with Timer() as timer:
            result = FairCap(config, cache=cache).run(
                bundle.table, bundle.schema, dag, bundle.protected
            )
        rows.append(row_from_metrics(label, result.metrics, timer.elapsed))
    return Table6Result(
        dataset=dataset, fairness_kind=bundle.fairness_kind, rows=tuple(rows)
    )


def format_table6(result: Table6Result) -> str:
    """Render the Table 6 layout."""
    decimals = 2 if result.dataset == "german" else 1
    title = (
        f"Table 6 [{result.dataset}] ({result.fairness_kind} group fairness + "
        "group coverage): metrics with different causal DAGs"
    )
    return format_rows(
        list(result.rows), title, utility_decimals=decimals, include_runtime=True
    )
