"""Causal DAGs over attribute names (Sec. 3 of the paper).

:class:`CausalDAG` is a thin, validated wrapper around
:class:`networkx.DiGraph` whose nodes are attribute names.  It exposes the
graph-theoretic queries the rest of the library needs — parents, ancestors,
descendants, topological order, d-separation — and keeps the invariant that
the graph is acyclic at construction time.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import networkx as nx

from repro.utils.errors import SchemaError


class CausalDAG:
    """A directed acyclic graph over attribute names.

    Parameters
    ----------
    edges:
        ``(cause, effect)`` pairs.
    nodes:
        Optional additional isolated nodes (attributes that participate in no
        edge, e.g. an attribute known to be causally irrelevant).

    Raises
    ------
    SchemaError
        If the edge set contains a directed cycle or a self-loop.
    """

    def __init__(
        self,
        edges: Iterable[tuple[str, str]] = (),
        nodes: Iterable[str] = (),
    ) -> None:
        graph = nx.DiGraph()
        graph.add_nodes_from(nodes)
        for cause, effect in edges:
            if cause == effect:
                raise SchemaError(f"self-loop on {cause!r} is not allowed")
            graph.add_edge(cause, effect)
        if not nx.is_directed_acyclic_graph(graph):
            cycle = nx.find_cycle(graph)
            raise SchemaError(f"causal graph contains a cycle: {cycle}")
        self._graph = graph
        self._init_caches()

    def _init_caches(self) -> None:
        # The DAG is immutable after construction, so every graph query is a
        # pure function of the instance; Step 2 of FairCap asks the same
        # ancestry / backdoor-graph / d-separation questions for every
        # grouping pattern, which made these memos one of the larger
        # Step-2 costs before they existed.
        self._ancestors_cache: dict[str, frozenset[str]] = {}
        self._descendants_cache: dict[str, frozenset[str]] = {}
        self._backdoor_graph_cache: dict[frozenset[str], "CausalDAG"] = {}
        self._dsep_cache: dict[tuple, bool] = {}

    def __getstate__(self) -> dict:
        # Memo caches are derived data; keep pickled payloads (e.g. the
        # process-pool mining payload) lean by dropping them.
        return {"_graph": self._graph}

    def __setstate__(self, state: dict) -> None:
        self._graph = state["_graph"]
        self._init_caches()

    # -- construction helpers -----------------------------------------------

    @classmethod
    def from_networkx(cls, graph: nx.DiGraph) -> "CausalDAG":
        """Wrap an existing networkx DiGraph (validating acyclicity)."""
        return cls(edges=graph.edges(), nodes=graph.nodes())

    @classmethod
    def _from_validated(
        cls, edges: Iterable[tuple[str, str]], nodes: Iterable[str]
    ) -> "CausalDAG":
        """Internal: build without the acyclicity check.

        Only for graphs derived from an existing DAG by operations that
        cannot introduce cycles (edge removal, induced subgraphs).
        """
        dag = cls.__new__(cls)
        graph = nx.DiGraph()
        graph.add_nodes_from(nodes)
        graph.add_edges_from(edges)
        dag._graph = graph
        dag._init_caches()
        return dag

    def to_networkx(self) -> nx.DiGraph:
        """Return a copy of the underlying DiGraph."""
        return self._graph.copy()

    def networkx_view(self) -> nx.DiGraph:
        """The underlying DiGraph itself — read-only by convention.

        For query code on the hot path (:mod:`repro.causal.dseparation`)
        that must not pay :meth:`to_networkx`'s copy; callers must not
        mutate the returned graph.
        """
        return self._graph

    # -- basic queries ----------------------------------------------------------

    @property
    def nodes(self) -> tuple[str, ...]:
        """All node names (insertion order)."""
        return tuple(self._graph.nodes())

    @property
    def edges(self) -> tuple[tuple[str, str], ...]:
        """All directed edges."""
        return tuple(self._graph.edges())

    def __contains__(self, node: object) -> bool:
        return node in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def _require(self, node: str) -> None:
        if node not in self._graph:
            raise SchemaError(f"node {node!r} not in causal DAG")

    def parents(self, node: str) -> tuple[str, ...]:
        """Direct causes of ``node`` (``Pa(node)`` in the paper)."""
        self._require(node)
        return tuple(sorted(self._graph.predecessors(node)))

    def children(self, node: str) -> tuple[str, ...]:
        """Direct effects of ``node``."""
        self._require(node)
        return tuple(sorted(self._graph.successors(node)))

    def ancestors(self, node: str) -> frozenset[str]:
        """All strict ancestors of ``node`` (memoised)."""
        cached = self._ancestors_cache.get(node)
        if cached is None:
            self._require(node)
            cached = frozenset(nx.ancestors(self._graph, node))
            self._ancestors_cache[node] = cached
        return cached

    def descendants(self, node: str) -> frozenset[str]:
        """All strict descendants of ``node`` (memoised)."""
        cached = self._descendants_cache.get(node)
        if cached is None:
            self._require(node)
            cached = frozenset(nx.descendants(self._graph, node))
            self._descendants_cache[node] = cached
        return cached

    def topological_order(self) -> tuple[str, ...]:
        """A topological ordering of the nodes (deterministic for ties)."""
        return tuple(nx.lexicographical_topological_sort(self._graph))

    def has_directed_path(self, source: str, target: str) -> bool:
        """Whether a directed path ``source -> ... -> target`` exists."""
        self._require(source)
        self._require(target)
        return nx.has_path(self._graph, source, target)

    # -- causal-specific queries --------------------------------------------------

    def d_separated(
        self,
        xs: Iterable[str],
        ys: Iterable[str],
        zs: Iterable[str] = (),
    ) -> bool:
        """Whether node sets ``xs`` and ``ys`` are d-separated given ``zs``.

        Delegates to :func:`repro.causal.dseparation.d_separated`; memoised
        per query triple (the backdoor pruning of Step 2 re-asks the same
        questions across grouping patterns and problem variants).
        """
        from repro.causal.dseparation import d_separated

        key = (frozenset(xs), frozenset(ys), frozenset(zs))
        cached = self._dsep_cache.get(key)
        if cached is None:
            cached = d_separated(self, key[0], key[1], key[2])
            self._dsep_cache[key] = cached
        return cached

    def causally_relevant(self, outcome: str) -> frozenset[str]:
        """Nodes with a directed path into ``outcome``.

        This implements the paper's Step-2 optimisation (i): "discard
        attributes that do not have a causal relationship with the outcome,
        since such attributes have no impact on CATE values".
        """
        self._require(outcome)
        return frozenset(nx.ancestors(self._graph, outcome))

    def without_outgoing_edges(self, nodes: Iterable[str]) -> "CausalDAG":
        """Return a copy with all edges *out of* ``nodes`` removed.

        This is the "backdoor graph" used when checking the backdoor
        criterion via d-separation.  Memoised per cut set, and built
        without re-validating acyclicity (removing edges cannot create a
        cycle).
        """
        cut = frozenset(nodes)
        cached = self._backdoor_graph_cache.get(cut)
        if cached is None:
            kept = [(u, v) for u, v in self._graph.edges() if u not in cut]
            cached = CausalDAG._from_validated(kept, self._graph.nodes())
            self._backdoor_graph_cache[cut] = cached
        return cached

    def restricted_to(self, nodes: Iterable[str]) -> "CausalDAG":
        """Induced subgraph over ``nodes``."""
        keep = set(nodes)
        missing = keep - set(self._graph.nodes())
        if missing:
            raise SchemaError(f"nodes not in DAG: {sorted(missing)}")
        sub = self._graph.subgraph(keep)
        return CausalDAG(edges=sub.edges(), nodes=sub.nodes())

    def __iter__(self) -> Iterator[str]:
        return iter(self._graph.nodes())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CausalDAG):
            return NotImplemented
        return set(self.nodes) == set(other.nodes) and set(self.edges) == set(
            other.edges
        )

    def __repr__(self) -> str:
        return (
            f"CausalDAG({self._graph.number_of_nodes()} nodes, "
            f"{self._graph.number_of_edges()} edges)"
        )
