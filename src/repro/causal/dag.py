"""Causal DAGs over attribute names (Sec. 3 of the paper).

:class:`CausalDAG` is a thin, validated wrapper around
:class:`networkx.DiGraph` whose nodes are attribute names.  It exposes the
graph-theoretic queries the rest of the library needs — parents, ancestors,
descendants, topological order, d-separation — and keeps the invariant that
the graph is acyclic at construction time.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import networkx as nx

from repro.utils.errors import SchemaError


class CausalDAG:
    """A directed acyclic graph over attribute names.

    Parameters
    ----------
    edges:
        ``(cause, effect)`` pairs.
    nodes:
        Optional additional isolated nodes (attributes that participate in no
        edge, e.g. an attribute known to be causally irrelevant).

    Raises
    ------
    SchemaError
        If the edge set contains a directed cycle or a self-loop.
    """

    def __init__(
        self,
        edges: Iterable[tuple[str, str]] = (),
        nodes: Iterable[str] = (),
    ) -> None:
        graph = nx.DiGraph()
        graph.add_nodes_from(nodes)
        for cause, effect in edges:
            if cause == effect:
                raise SchemaError(f"self-loop on {cause!r} is not allowed")
            graph.add_edge(cause, effect)
        if not nx.is_directed_acyclic_graph(graph):
            cycle = nx.find_cycle(graph)
            raise SchemaError(f"causal graph contains a cycle: {cycle}")
        self._graph = graph

    # -- construction helpers -----------------------------------------------

    @classmethod
    def from_networkx(cls, graph: nx.DiGraph) -> "CausalDAG":
        """Wrap an existing networkx DiGraph (validating acyclicity)."""
        return cls(edges=graph.edges(), nodes=graph.nodes())

    def to_networkx(self) -> nx.DiGraph:
        """Return a copy of the underlying DiGraph."""
        return self._graph.copy()

    # -- basic queries ----------------------------------------------------------

    @property
    def nodes(self) -> tuple[str, ...]:
        """All node names (insertion order)."""
        return tuple(self._graph.nodes())

    @property
    def edges(self) -> tuple[tuple[str, str], ...]:
        """All directed edges."""
        return tuple(self._graph.edges())

    def __contains__(self, node: object) -> bool:
        return node in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def _require(self, node: str) -> None:
        if node not in self._graph:
            raise SchemaError(f"node {node!r} not in causal DAG")

    def parents(self, node: str) -> tuple[str, ...]:
        """Direct causes of ``node`` (``Pa(node)`` in the paper)."""
        self._require(node)
        return tuple(sorted(self._graph.predecessors(node)))

    def children(self, node: str) -> tuple[str, ...]:
        """Direct effects of ``node``."""
        self._require(node)
        return tuple(sorted(self._graph.successors(node)))

    def ancestors(self, node: str) -> frozenset[str]:
        """All strict ancestors of ``node``."""
        self._require(node)
        return frozenset(nx.ancestors(self._graph, node))

    def descendants(self, node: str) -> frozenset[str]:
        """All strict descendants of ``node``."""
        self._require(node)
        return frozenset(nx.descendants(self._graph, node))

    def topological_order(self) -> tuple[str, ...]:
        """A topological ordering of the nodes (deterministic for ties)."""
        return tuple(nx.lexicographical_topological_sort(self._graph))

    def has_directed_path(self, source: str, target: str) -> bool:
        """Whether a directed path ``source -> ... -> target`` exists."""
        self._require(source)
        self._require(target)
        return nx.has_path(self._graph, source, target)

    # -- causal-specific queries --------------------------------------------------

    def d_separated(
        self,
        xs: Iterable[str],
        ys: Iterable[str],
        zs: Iterable[str] = (),
    ) -> bool:
        """Whether node sets ``xs`` and ``ys`` are d-separated given ``zs``.

        Delegates to :func:`repro.causal.dseparation.d_separated`.
        """
        from repro.causal.dseparation import d_separated

        return d_separated(self, xs, ys, zs)

    def causally_relevant(self, outcome: str) -> frozenset[str]:
        """Nodes with a directed path into ``outcome``.

        This implements the paper's Step-2 optimisation (i): "discard
        attributes that do not have a causal relationship with the outcome,
        since such attributes have no impact on CATE values".
        """
        self._require(outcome)
        return frozenset(nx.ancestors(self._graph, outcome))

    def without_outgoing_edges(self, nodes: Iterable[str]) -> "CausalDAG":
        """Return a copy with all edges *out of* ``nodes`` removed.

        This is the "backdoor graph" used when checking the backdoor
        criterion via d-separation.
        """
        cut = set(nodes)
        kept = [(u, v) for u, v in self._graph.edges() if u not in cut]
        return CausalDAG(edges=kept, nodes=self._graph.nodes())

    def restricted_to(self, nodes: Iterable[str]) -> "CausalDAG":
        """Induced subgraph over ``nodes``."""
        keep = set(nodes)
        missing = keep - set(self._graph.nodes())
        if missing:
            raise SchemaError(f"nodes not in DAG: {sorted(missing)}")
        sub = self._graph.subgraph(keep)
        return CausalDAG(edges=sub.edges(), nodes=sub.nodes())

    def __iter__(self) -> Iterator[str]:
        return iter(self._graph.nodes())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CausalDAG):
            return NotImplemented
        return set(self.nodes) == set(other.nodes) and set(self.edges) == set(
            other.edges
        )

    def __repr__(self) -> str:
        return (
            f"CausalDAG({self._graph.number_of_nodes()} nodes, "
            f"{self._graph.number_of_edges()} edges)"
        )
