"""The PC causal-discovery algorithm (Spirtes, Glymour & Scheines 2001).

Used for the "PC DAG" row of Table 6 in the paper, which studies robustness
of FairCap's output to the choice of causal DAG.  The implementation follows
the classic recipe:

1. **Skeleton**: start from the complete undirected graph and remove edges
   whose endpoints test conditionally independent given some subset of their
   neighbourhood (subset size grows level by level up to ``max_cond_size``);
   the separating set is recorded.
2. **V-structures**: for every unshielded triple ``x - z - y`` with
   ``z`` outside ``sepset(x, y)``, orient ``x -> z <- y``.
3. **Meek rules** 1-3 propagate orientations.
4. **DAG extension**: any edge still undirected is oriented by a
   deterministic heuristic — toward the outcome if one endpoint is the
   outcome, otherwise from the alphabetically smaller node — skipping any
   orientation that would create a cycle.  (A CPDAG represents an
   equivalence class; FairCap needs one member, and the evaluation of
   Table 6 shows results are robust to this choice.)
"""

from __future__ import annotations

from itertools import combinations

import networkx as nx

from repro.causal.dag import CausalDAG
from repro.causal.independence import CITester
from repro.tabular.table import Table


def pc_skeleton(
    table: Table,
    alpha: float = 0.05,
    max_cond_size: int = 2,
    tester: CITester | None = None,
) -> tuple[nx.Graph, dict[frozenset[str], tuple[str, ...]]]:
    """Estimate the undirected skeleton and separating sets.

    Returns
    -------
    (skeleton, sepsets):
        ``skeleton`` is an undirected :class:`networkx.Graph`; ``sepsets``
        maps each removed pair (as a frozenset) to the conditioning set that
        separated it.
    """
    tester = tester if tester is not None else CITester(table)
    nodes = list(table.column_names)
    graph = nx.complete_graph(nodes)
    sepsets: dict[frozenset[str], tuple[str, ...]] = {}

    for level in range(max_cond_size + 1):
        removed_any = False
        # Snapshot edges: removal during iteration must not affect the loop.
        for x, y in sorted(graph.edges()):
            neighbours = set(graph.neighbors(x)) - {y}
            if len(neighbours) < level:
                continue
            separated = False
            for subset in combinations(sorted(neighbours), level):
                if tester.p_value(x, y, subset) > alpha:
                    sepsets[frozenset((x, y))] = subset
                    separated = True
                    break
            if separated:
                graph.remove_edge(x, y)
                removed_any = True
        if not removed_any and level > 0:
            break
    return graph, sepsets


def _orient_v_structures(
    skeleton: nx.Graph, sepsets: dict[frozenset[str], tuple[str, ...]]
) -> nx.DiGraph:
    """Return a mixed graph holding the v-structure orientations.

    The result is encoded as a DiGraph in which an undirected edge appears as
    a pair of anti-parallel arcs and an oriented edge as a single arc.
    """
    mixed = nx.DiGraph()
    mixed.add_nodes_from(skeleton.nodes())
    for x, y in skeleton.edges():
        mixed.add_edge(x, y)
        mixed.add_edge(y, x)
    for z in sorted(skeleton.nodes()):
        for x, y in combinations(sorted(skeleton.neighbors(z)), 2):
            if skeleton.has_edge(x, y):
                continue  # shielded triple
            sepset = sepsets.get(frozenset((x, y)), ())
            if z not in sepset:
                # x -> z <- y : drop the arcs pointing away from z.
                if mixed.has_edge(z, x) and mixed.has_edge(x, z):
                    mixed.remove_edge(z, x)
                if mixed.has_edge(z, y) and mixed.has_edge(y, z):
                    mixed.remove_edge(z, y)
    return mixed


def _is_undirected(mixed: nx.DiGraph, a: str, b: str) -> bool:
    return mixed.has_edge(a, b) and mixed.has_edge(b, a)


def _is_directed(mixed: nx.DiGraph, a: str, b: str) -> bool:
    return mixed.has_edge(a, b) and not mixed.has_edge(b, a)


def _apply_meek_rules(mixed: nx.DiGraph) -> None:
    """Apply Meek orientation rules 1-3 until fixpoint (in place)."""
    changed = True
    while changed:
        changed = False
        undirected = [
            (a, b)
            for a, b in mixed.edges()
            if a < b and _is_undirected(mixed, a, b)
        ]
        for a, b in undirected:
            for first, second in ((a, b), (b, a)):
                # Rule 1: c -> first, c and second non-adjacent => first -> second.
                rule1 = any(
                    _is_directed(mixed, c, first)
                    and not mixed.has_edge(c, second)
                    and not mixed.has_edge(second, c)
                    for c in mixed.predecessors(first)
                )
                # Rule 2: first -> c -> second => first -> second.
                rule2 = any(
                    _is_directed(mixed, first, c) and _is_directed(mixed, c, second)
                    for c in mixed.successors(first)
                )
                # Rule 3: first - c -> second and first - d -> second with
                # c, d non-adjacent => first -> second.
                parents_of_second = [
                    c
                    for c in mixed.predecessors(second)
                    if _is_directed(mixed, c, second) and _is_undirected(mixed, first, c)
                ]
                rule3 = any(
                    not mixed.has_edge(c, d) and not mixed.has_edge(d, c)
                    for c, d in combinations(sorted(parents_of_second), 2)
                )
                if rule1 or rule2 or rule3:
                    if mixed.has_edge(second, first):
                        mixed.remove_edge(second, first)
                        changed = True
                    break


def _extend_to_dag(mixed: nx.DiGraph, outcome: str | None) -> nx.DiGraph:
    """Orient remaining undirected edges into a DAG (deterministic heuristic).

    With imperfect CI tests the v-structure phase can produce *conflicting*
    orientations that form directed cycles; the standard conservative remedy
    is applied here: pre-oriented edges are admitted one at a time (sorted,
    so deterministically) and any edge that would close a cycle is dropped.
    """
    result = nx.DiGraph()
    result.add_nodes_from(mixed.nodes())
    for a, b in sorted(
        (a, b) for a, b in mixed.edges() if _is_directed(mixed, a, b)
    ):
        result.add_edge(a, b)
        if not nx.is_directed_acyclic_graph(result):
            result.remove_edge(a, b)
    pending = sorted(
        {tuple(sorted((a, b))) for a, b in mixed.edges() if _is_undirected(mixed, a, b)}
    )
    for a, b in pending:
        if outcome is not None and b == outcome:
            first_choice, second_choice = (a, b), (b, a)
        elif outcome is not None and a == outcome:
            first_choice, second_choice = (b, a), (a, b)
        else:
            first_choice, second_choice = (a, b), (b, a)
        for u, v in (first_choice, second_choice):
            result.add_edge(u, v)
            if nx.is_directed_acyclic_graph(result):
                break
            result.remove_edge(u, v)
        else:  # pragma: no cover - both directions cycle; drop the edge
            continue
    return result


def pc_dag(
    table: Table,
    outcome: str | None = None,
    alpha: float = 0.05,
    max_cond_size: int = 2,
    tester: CITester | None = None,
) -> CausalDAG:
    """Run the full PC pipeline on ``table`` and return a CausalDAG.

    Parameters
    ----------
    table:
        The data to discover over (all columns participate).
    outcome:
        Optional outcome attribute; used only to bias the orientation of
        edges that the CPDAG leaves undirected (pointing into the outcome).
    alpha:
        Significance level of the CI tests.
    max_cond_size:
        Largest conditioning-set size to try in the skeleton phase.
    """
    skeleton, sepsets = pc_skeleton(
        table, alpha=alpha, max_cond_size=max_cond_size, tester=tester
    )
    mixed = _orient_v_structures(skeleton, sepsets)
    _apply_meek_rules(mixed)
    dag = _extend_to_dag(mixed, outcome)
    return CausalDAG(edges=dag.edges(), nodes=dag.nodes())
