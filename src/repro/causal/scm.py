"""Structural causal models (SCMs) with replayable noise.

The synthetic Stack Overflow and German Credit datasets (S19, S20) are drawn
from SCMs so that every causal effect FairCap estimates has a *known ground
truth*: the same exogenous noise can be replayed under different ``do()``
interventions, and the difference of outcomes is the true (C)ATE.  The test
suite leans on this to validate the estimators end to end.

An SCM is a list of :class:`SCMNode`; each node owns

- its ``parents`` (names of other nodes),
- a ``noise`` sampler ``(n, rng) -> ndarray`` (default: standard normal), and
- a ``mechanism`` ``(parent_values, noise) -> ndarray`` producing the node's
  values (object arrays for categorical nodes, float arrays for continuous).

Sampling walks the nodes in topological order.  ``do()`` interventions
replace a node's mechanism output with a constant, exactly matching Pearl's
graph surgery (the node's noise is still drawn, to keep the noise streams of
downstream nodes aligned between regimes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.causal.dag import CausalDAG
from repro.tabular.schema import Schema
from repro.tabular.table import Table
from repro.utils.errors import SchemaError
from repro.utils.rng import ensure_rng

Mechanism = Callable[[dict[str, np.ndarray], np.ndarray], np.ndarray]
NoiseSampler = Callable[[int, np.random.Generator], np.ndarray]


def _standard_normal(n: int, rng: np.random.Generator) -> np.ndarray:
    return rng.standard_normal(n)


@dataclass(frozen=True)
class SCMNode:
    """One endogenous variable of an SCM.

    Attributes
    ----------
    name:
        Variable name (becomes the table column name).
    parents:
        Names of the endogenous parents.
    mechanism:
        ``f(parent_values, noise) -> values``; must return an array of
        length ``n``.
    noise:
        Exogenous noise sampler; defaults to i.i.d. standard normals.
    """

    name: str
    parents: tuple[str, ...]
    mechanism: Mechanism
    noise: NoiseSampler = field(default=_standard_normal)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("SCM node name must be non-empty")
        if self.name in self.parents:
            raise SchemaError(f"node {self.name!r} cannot be its own parent")


class StructuralCausalModel:
    """A collection of :class:`SCMNode` forming a DAG.

    Parameters
    ----------
    nodes:
        The model's nodes, in any order; a topological order is derived and
        cycles are rejected at construction.
    """

    def __init__(self, nodes: Iterable[SCMNode]) -> None:
        self.nodes: tuple[SCMNode, ...] = tuple(nodes)
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            raise SchemaError("duplicate SCM node names")
        self._by_name = {node.name: node for node in self.nodes}
        for node in self.nodes:
            for parent in node.parents:
                if parent not in self._by_name:
                    raise SchemaError(
                        f"node {node.name!r} references unknown parent {parent!r}"
                    )
        self._dag = CausalDAG(
            edges=[
                (parent, node.name) for node in self.nodes for parent in node.parents
            ],
            nodes=names,
        )
        self._order = self._dag.topological_order()

    def dag(self) -> CausalDAG:
        """The causal DAG induced by the node parent sets."""
        return self._dag

    @property
    def names(self) -> tuple[str, ...]:
        """Node names in declaration order."""
        return tuple(node.name for node in self.nodes)

    # -- sampling ----------------------------------------------------------------

    def draw_noise(
        self, n: int, rng: int | np.random.Generator | None = None
    ) -> dict[str, np.ndarray]:
        """Draw the exogenous noise for every node (replayable across regimes)."""
        generator = ensure_rng(rng)
        # Draw in a fixed (declaration) order so the same seed gives the same
        # noise regardless of which interventions are applied later.
        return {node.name: node.noise(n, generator) for node in self.nodes}

    def sample_with_noise(
        self,
        noise: Mapping[str, np.ndarray],
        interventions: Mapping[str, object] | None = None,
    ) -> dict[str, np.ndarray]:
        """Evaluate all mechanisms under ``noise`` and optional ``do()`` values."""
        interventions = dict(interventions or {})
        unknown = set(interventions) - set(self._by_name)
        if unknown:
            raise SchemaError(f"interventions on unknown nodes: {sorted(unknown)}")
        n = len(next(iter(noise.values()))) if noise else 0
        values: dict[str, np.ndarray] = {}
        for name in self._order:
            node = self._by_name[name]
            if name in interventions:
                constant = interventions[name]
                if isinstance(constant, (int, float, np.integer, np.floating)):
                    values[name] = np.full(n, float(constant))
                else:
                    values[name] = np.full(n, constant, dtype=object)
                continue
            parent_values = {p: values[p] for p in node.parents}
            result = np.asarray(node.mechanism(parent_values, noise[name]))
            if result.shape != (n,):
                raise SchemaError(
                    f"mechanism of {name!r} returned shape {result.shape}, "
                    f"expected ({n},)"
                )
            values[name] = result
        return values

    def sample(
        self,
        n: int,
        rng: int | np.random.Generator | None = None,
        interventions: Mapping[str, object] | None = None,
    ) -> dict[str, np.ndarray]:
        """Draw ``n`` rows, optionally under ``do()`` interventions."""
        return self.sample_with_noise(self.draw_noise(n, rng), interventions)

    def sample_table(
        self,
        n: int,
        rng: int | np.random.Generator | None = None,
        schema: Schema | None = None,
    ) -> Table:
        """Draw ``n`` rows and wrap them in a :class:`Table`."""
        values = self.sample(n, rng)
        return Table({name: values[name] for name in self.names}, schema=schema)

    # -- ground-truth effects -----------------------------------------------------

    def ground_truth_cate(
        self,
        interventions: Mapping[str, object],
        baseline: Mapping[str, object],
        outcome: str,
        n: int = 50_000,
        rng: int | np.random.Generator | None = None,
        condition: Callable[[dict[str, np.ndarray]], np.ndarray] | None = None,
    ) -> float:
        """Simulate the true conditional average treatment effect.

        The same noise is replayed under ``do(interventions)`` and
        ``do(baseline)``; the result is the mean outcome difference over the
        rows selected by ``condition`` (evaluated on the *baseline* regime,
        whose pre-treatment attributes coincide with the natural regime for
        any condition over non-descendants of the intervened nodes).
        """
        if outcome not in self._by_name:
            raise SchemaError(f"unknown outcome {outcome!r}")
        noise = self.draw_noise(n, rng)
        treated = self.sample_with_noise(noise, interventions)
        control = self.sample_with_noise(noise, baseline)
        if condition is not None:
            mask = np.asarray(condition(control), dtype=bool)
            if mask.shape != (n,):
                raise SchemaError("condition must return a length-n boolean mask")
            if not mask.any():
                raise SchemaError("condition selects no rows")
        else:
            mask = np.ones(n, dtype=bool)
        diff = treated[outcome][mask].astype(float) - control[outcome][mask].astype(float)
        return float(diff.mean())

    def ground_truth_ate(
        self,
        interventions: Mapping[str, object],
        baseline: Mapping[str, object],
        outcome: str,
        n: int = 50_000,
        rng: int | np.random.Generator | None = None,
    ) -> float:
        """Simulate the true average treatment effect (unconditional CATE)."""
        return self.ground_truth_cate(
            interventions, baseline, outcome, n=n, rng=rng, condition=None
        )
