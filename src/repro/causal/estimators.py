"""CATE estimation under backdoor adjustment (Sec. 3, Eq. 1 and its
conditional form).

The paper computes CATE values with the DoWhy library; this module provides
the equivalent estimators from scratch:

- :class:`LinearAdjustmentEstimator` — DoWhy's default
  ``backdoor.linear_regression``: regress ``O ~ 1 + T + Z`` on the rows of
  the conditioning subpopulation, read the effect off the ``T`` coefficient,
  and test it against zero with a t-test.
- :class:`StratifiedEstimator` — exact stratification on the adjustment
  attributes: within every stratum ``Z=z`` containing both treated and
  control rows, take the difference of outcome means; aggregate weighted by
  stratum size.  This directly mirrors the identification formula
  ``E_Z[E[O|T=1,B,Z] - E[O|T=0,B,Z]]`` and serves as a cross-check and
  ablation of the linear estimator.

Both estimators return a :class:`CateResult` carrying the estimate, its
standard error, a p-value against the zero-effect null, and diagnostic
counts.  Degenerate inputs (no treated rows, no control rows, zero overlap)
yield an *invalid* result rather than an exception, because Step 2 of FairCap
probes thousands of candidate treatments and must skip the degenerate ones
cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.causal.linalg import ols, one_hot
from repro.tabular.column import CategoricalColumn, NumericColumn
from repro.tabular.table import Table
from repro.utils.errors import EstimationError

#: Diagnostic reason shared by every positivity-screen rejection (scalar
#: estimators, the batched kernels, and the bitset pruning layer must emit
#: byte-identical results for the same degenerate candidate).
POSITIVITY_REASON = "positivity violated: empty treated or control group"


@dataclass(frozen=True)
class CateResult:
    """Outcome of a CATE estimation.

    Attributes
    ----------
    estimate:
        The CATE point estimate (NaN when invalid).
    stderr:
        Standard error of the estimate (NaN when unavailable).
    p_value:
        Two-sided p-value against ``CATE = 0`` (NaN when unavailable).
    n, n_treated, n_control:
        Row counts of the conditioning subpopulation and its treated /
        control partition.
    adjustment:
        The adjustment attributes used.
    valid:
        Whether the estimate is usable.
    reason:
        Human-readable reason when ``valid`` is False.
    """

    estimate: float
    stderr: float
    p_value: float
    n: int
    n_treated: int
    n_control: int
    adjustment: tuple[str, ...] = ()
    valid: bool = True
    reason: str = ""

    def is_significant(self, alpha: float = 0.05) -> bool:
        """Whether the effect is significant at level ``alpha``."""
        return self.valid and np.isfinite(self.p_value) and self.p_value <= alpha

    @staticmethod
    def invalid(
        reason: str,
        n: int = 0,
        n_treated: int = 0,
        n_control: int = 0,
        adjustment: tuple[str, ...] = (),
    ) -> "CateResult":
        """Build an invalid (unusable) result with a diagnostic reason."""
        return CateResult(
            estimate=float("nan"),
            stderr=float("nan"),
            p_value=float("nan"),
            n=n,
            n_treated=n_treated,
            n_control=n_control,
            adjustment=adjustment,
            valid=False,
            reason=reason,
        )


def _encode_adjustment(table: Table, names: tuple[str, ...]) -> np.ndarray:
    """Encode adjustment columns into a design block.

    Categorical columns one-hot encode with the first category dropped;
    continuous columns enter as-is.  Returns an ``(n, k)`` matrix (``k`` may
    be zero when there is nothing to adjust for).
    """
    blocks: list[np.ndarray] = []
    for name in names:
        column = table.column(name)
        if isinstance(column, CategoricalColumn):
            blocks.append(one_hot(column.codes, len(column.categories)))
        else:
            blocks.append(column.decode().reshape(-1, 1))
    if not blocks:
        return np.empty((table.n_rows, 0), dtype=np.float64)
    return np.hstack(blocks)


def _treatment_unidentified(design: np.ndarray) -> bool:
    """Whether the treatment column (column 1) lies in the span of the rest.

    Only consulted on rank-deficient designs.  If every null-space
    direction lives among the adjustment columns, the treatment coefficient
    is still unique across all least-squares solutions and the fit stands;
    if the treated indicator itself is (numerically) a linear function of
    the intercept and adjustment block, no amount of data identifies the
    effect and the estimate must be declared invalid.
    """
    t_col = design[:, 1]
    others = np.delete(design, 1, axis=1)
    projection, *_ = np.linalg.lstsq(others, t_col, rcond=None)
    residual = t_col - others @ projection
    return float(residual @ residual) <= 1e-16 * design.shape[0]


def _outcome_vector(table: Table, outcome: str) -> np.ndarray:
    column = table.column(outcome)
    if not isinstance(column, NumericColumn):
        raise EstimationError(
            f"outcome {outcome!r} must be continuous (binary outcomes should "
            "be encoded as 0/1 numeric columns)"
        )
    return column.decode()


class LinearAdjustmentEstimator:
    """CATE via OLS on ``O ~ 1 + T + adjustment`` (DoWhy's default)."""

    name = "linear_adjustment"

    def cache_key(self) -> tuple:
        """Identity-and-parameters key for :class:`EstimationCache` entries."""
        return (self.name,)

    def estimate(
        self,
        table: Table,
        treated: np.ndarray,
        outcome: str,
        adjustment: tuple[str, ...] = (),
    ) -> CateResult:
        """Estimate the effect of the binary ``treated`` indicator on ``outcome``.

        Parameters
        ----------
        table:
            The conditioning subpopulation (rows already restricted to the
            grouping pattern).
        treated:
            Boolean array over ``table`` rows: True = treatment group
            (the rows satisfying the intervention pattern), False = control.
        outcome:
            Continuous outcome attribute name.
        adjustment:
            Confounder attributes (a backdoor set).
        """
        treated = np.asarray(treated, dtype=bool)
        if treated.shape != (table.n_rows,):
            raise EstimationError(
                f"treated mask length {treated.shape} != rows {table.n_rows}"
            )
        n = table.n_rows
        n_treated = int(treated.sum())
        n_control = n - n_treated
        if n_treated == 0 or n_control == 0:
            return CateResult.invalid(
                POSITIVITY_REASON,
                n=n,
                n_treated=n_treated,
                n_control=n_control,
                adjustment=adjustment,
            )

        y = _outcome_vector(table, outcome)
        z_block = _encode_adjustment(table, adjustment)
        design = np.hstack(
            [
                np.ones((n, 1)),
                treated.astype(np.float64).reshape(-1, 1),
                z_block,
            ]
        )
        fit = ols(design, y)
        estimate = float(fit.coefficients[1])
        stderr = float(fit.stderr[1])
        if fit.dof <= 0 or not np.isfinite(stderr) or stderr == 0.0:
            return CateResult.invalid(
                "degenerate fit: no residual degrees of freedom",
                n=n,
                n_treated=n_treated,
                n_control=n_control,
                adjustment=adjustment,
            )
        if fit.rank < design.shape[1] and _treatment_unidentified(design):
            # The treated indicator lies in the span of the intercept and
            # the adjustment block — the effect is not identified (zero
            # overlap within adjustment strata) and lstsq's minimum-norm
            # split would silently report an arbitrary coefficient.
            return CateResult.invalid(
                "treatment collinear with the adjustment set "
                "(no treated/control overlap within strata)",
                n=n,
                n_treated=n_treated,
                n_control=n_control,
                adjustment=adjustment,
            )
        t_stat = estimate / stderr
        p_value = float(2.0 * stats.t.sf(abs(t_stat), df=fit.dof))
        return CateResult(
            estimate=estimate,
            stderr=stderr,
            p_value=p_value,
            n=n,
            n_treated=n_treated,
            n_control=n_control,
            adjustment=adjustment,
        )

    def estimate_batch(
        self,
        table: Table,
        treated_matrix: np.ndarray,
        outcome: str,
        adjustment: tuple[str, ...] = (),
        factorization=None,
    ) -> list[CateResult]:
        """Estimate one CATE per column of ``treated_matrix`` (batched FWL).

        Delegates to :func:`repro.causal.batch.estimate_cate_batch`: the
        shared ``[1, Z]`` block is factorized once (or taken pre-built from
        ``factorization``) and every column is read off the residualised
        stack — results agree with :meth:`estimate` per column to working
        precision, bit-identically on degenerate fallbacks.
        """
        from repro.causal.batch import estimate_cate_batch

        return estimate_cate_batch(
            table,
            treated_matrix,
            outcome,
            adjustment,
            factorization=factorization,
        )

    def estimate_level(
        self,
        table: Table,
        treated_matrix: np.ndarray,
        outcome: str,
        adjustments,
        factorization_for=None,
    ) -> list[CateResult]:
        """Batched FWL over a whole lattice level (per-column adjustments).

        Delegates to :func:`repro.causal.batch.estimate_cate_level`.
        """
        from repro.causal.batch import estimate_cate_level

        return estimate_cate_level(
            table,
            treated_matrix,
            outcome,
            adjustments,
            factorization_for=factorization_for,
        )

    def estimate_level_rows(
        self,
        table: Table,
        treated_rows: np.ndarray,
        outcome: str,
        adjustments,
        factorization_for=None,
        float_rows: np.ndarray | None = None,
        counts: np.ndarray | None = None,
    ) -> list[CateResult]:
        """Row-major fused level kernel (the frontier batcher's entry point).

        Delegates to :func:`repro.causal.batch.estimate_level_rows`; the
        presence of this method is what gates frontier batching onto an
        estimator (:class:`StratifiedEstimator` has no batched path and
        ignores the frontier flags).
        """
        from repro.causal.batch import estimate_level_rows

        return estimate_level_rows(
            table,
            treated_rows,
            outcome,
            adjustments,
            factorization_for=factorization_for,
            float_rows=float_rows,
            counts=counts,
        )


class StratifiedEstimator:
    """CATE via exact stratification on the adjustment attributes.

    Continuous adjustment attributes are discretised into ``n_bins``
    quantile bins before stratifying.  Strata that lack either a treated or a
    control row are dropped; if the dropped strata hold more than
    ``max_dropped_fraction`` of the rows the estimate is marked invalid
    (severe positivity violation).
    """

    name = "stratified"

    def __init__(self, n_bins: int = 4, max_dropped_fraction: float = 0.5) -> None:
        if n_bins < 2:
            raise EstimationError("n_bins must be at least 2")
        self.n_bins = n_bins
        self.max_dropped_fraction = max_dropped_fraction

    def cache_key(self) -> tuple:
        """Identity-and-parameters key for :class:`EstimationCache` entries."""
        return (self.name, self.n_bins, self.max_dropped_fraction)

    def _stratum_codes(self, table: Table, names: tuple[str, ...]) -> np.ndarray:
        """Combine adjustment columns into a single stratum id per row."""
        combined = np.zeros(table.n_rows, dtype=np.int64)
        for name in names:
            column = table.column(name)
            if isinstance(column, CategoricalColumn):
                codes = column.codes.astype(np.int64)
                cardinality = max(len(column.categories), 1)
            else:
                values = column.decode()
                edges = np.quantile(values, np.linspace(0, 1, self.n_bins + 1)[1:-1])
                codes = np.searchsorted(np.unique(edges), values, side="right")
                cardinality = self.n_bins
            combined = combined * cardinality + codes
        return combined

    def estimate(
        self,
        table: Table,
        treated: np.ndarray,
        outcome: str,
        adjustment: tuple[str, ...] = (),
    ) -> CateResult:
        """Estimate the treatment effect by within-stratum mean differences."""
        treated = np.asarray(treated, dtype=bool)
        if treated.shape != (table.n_rows,):
            raise EstimationError(
                f"treated mask length {treated.shape} != rows {table.n_rows}"
            )
        n = table.n_rows
        n_treated = int(treated.sum())
        n_control = n - n_treated
        if n_treated == 0 or n_control == 0:
            return CateResult.invalid(
                POSITIVITY_REASON,
                n=n,
                n_treated=n_treated,
                n_control=n_control,
                adjustment=adjustment,
            )

        y = _outcome_vector(table, outcome)
        strata = self._stratum_codes(table, adjustment)
        # Aggregate every stratum at once with bincount instead of a Python
        # loop over np.unique: per-arm counts, outcome sums, and (two-pass,
        # for numerical stability) squared deviations.
        _, inverse = np.unique(strata, return_inverse=True)
        n_strata = int(inverse.max()) + 1
        cnt_t = np.bincount(inverse[treated], minlength=n_strata)
        cnt_c = np.bincount(inverse[~treated], minlength=n_strata)
        overlap = (cnt_t > 0) & (cnt_c > 0)

        if not overlap.any():
            return CateResult.invalid(
                "no stratum contains both treated and control rows",
                n=n,
                n_treated=n_treated,
                n_control=n_control,
                adjustment=adjustment,
            )

        with np.errstate(divide="ignore", invalid="ignore"):
            mean_t = (
                np.bincount(inverse[treated], weights=y[treated], minlength=n_strata)
                / cnt_t
            )
            mean_c = (
                np.bincount(inverse[~treated], weights=y[~treated], minlength=n_strata)
                / cnt_c
            )
            dev_t = np.bincount(
                inverse[treated],
                weights=(y[treated] - mean_t[inverse[treated]]) ** 2,
                minlength=n_strata,
            )
            dev_c = np.bincount(
                inverse[~treated],
                weights=(y[~treated] - mean_c[inverse[~treated]]) ** 2,
                minlength=n_strata,
            )
            var_t = np.where(cnt_t > 1, dev_t / np.maximum(cnt_t - 1, 1) / cnt_t, 0.0)
            var_c = np.where(cnt_c > 1, dev_c / np.maximum(cnt_c - 1, 1) / cnt_c, 0.0)

        effects = (mean_t - mean_c)[overlap]
        weights = (cnt_t + cnt_c)[overlap].astype(np.float64)
        variances = (var_t + var_c)[overlap]
        used_rows = int(weights.sum())
        dropped_fraction = 1.0 - used_rows / n
        if dropped_fraction > self.max_dropped_fraction:
            return CateResult.invalid(
                f"positivity too weak: {dropped_fraction:.0%} of rows in "
                "strata lacking overlap",
                n=n,
                n_treated=n_treated,
                n_control=n_control,
                adjustment=adjustment,
            )

        weight_arr = weights / weights.sum()
        estimate = float(effects @ weight_arr)
        variance = float(variances @ (weight_arr**2))
        stderr = float(np.sqrt(variance)) if variance > 0 else float("nan")
        if np.isfinite(stderr) and stderr > 0:
            z_stat = estimate / stderr
            p_value = float(2.0 * stats.norm.sf(abs(z_stat)))
        else:
            p_value = float("nan")
        return CateResult(
            estimate=estimate,
            stderr=stderr,
            p_value=p_value,
            n=n,
            n_treated=n_treated,
            n_control=n_control,
            adjustment=adjustment,
        )


_DEFAULT_ESTIMATOR = LinearAdjustmentEstimator()


def estimate_cate(
    table: Table,
    treated: np.ndarray,
    outcome: str,
    adjustment: tuple[str, ...] = (),
    estimator: LinearAdjustmentEstimator | StratifiedEstimator | None = None,
    cache=None,
) -> CateResult:
    """Facade: estimate a CATE with the given (or default linear) estimator.

    ``cache`` may be an :class:`~repro.parallel.cache.EstimationCache` (or
    anything exposing ``get_or_estimate``); a hit returns a result identical
    to recomputation because entries are keyed by the full problem content.
    """
    chosen = estimator if estimator is not None else _DEFAULT_ESTIMATOR
    if cache is not None:
        return cache.get_or_estimate(chosen, table, treated, outcome, adjustment)
    return chosen.estimate(table, treated, outcome, adjustment)
