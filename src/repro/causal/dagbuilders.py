"""Synthetic causal-DAG builders for the Table 6 robustness study.

The paper compares FairCap's output under five DAGs; three are synthetic
simplifications constructed directly from the schema:

- ``1-layer Indep DAG`` — every attribute is a direct cause of the outcome
  and nothing else ("the causal graph is ignored": no confounding, so no
  adjustment happens);
- ``2-layer Mutable DAG`` — immutable attributes cause the mutable
  attributes, and only mutable attributes cause the outcome (immutables act
  purely as confounders);
- ``2-layer DAG`` — like the mutable DAG, but immutable attributes also
  cause the outcome directly.

The remaining two rows (original DAG, PC DAG) come from the dataset module
and :func:`repro.causal.discovery.pc_dag` respectively.
"""

from __future__ import annotations


from repro.causal.dag import CausalDAG
from repro.tabular.schema import Schema
from repro.utils.errors import SchemaError


def _split(schema: Schema) -> tuple[tuple[str, ...], tuple[str, ...], str]:
    schema.validate_for_prescription()
    return schema.immutable_names, schema.mutable_names, schema.outcome_name


def one_layer_independent_dag(schema: Schema) -> CausalDAG:
    """All attributes point directly (and only) at the outcome."""
    immutables, mutables, outcome = _split(schema)
    edges = [(attr, outcome) for attr in (*immutables, *mutables)]
    return CausalDAG(edges=edges, nodes=schema.names)


def two_layer_mutable_dag(schema: Schema) -> CausalDAG:
    """Immutables -> mutables -> outcome; immutables do not hit the outcome."""
    immutables, mutables, outcome = _split(schema)
    edges: list[tuple[str, str]] = []
    for imm in immutables:
        edges.extend((imm, mut) for mut in mutables)
    edges.extend((mut, outcome) for mut in mutables)
    return CausalDAG(edges=edges, nodes=schema.names)


def two_layer_dag(schema: Schema) -> CausalDAG:
    """Immutables -> mutables and immutables + mutables -> outcome."""
    immutables, mutables, outcome = _split(schema)
    edges: list[tuple[str, str]] = []
    for imm in immutables:
        edges.extend((imm, mut) for mut in mutables)
        edges.append((imm, outcome))
    edges.extend((mut, outcome) for mut in mutables)
    return CausalDAG(edges=edges, nodes=schema.names)


def validate_dag_covers_schema(dag: CausalDAG, schema: Schema) -> None:
    """Check every schema attribute appears in the DAG (outcome included)."""
    missing = [name for name in schema.names if name not in dag]
    if missing:
        raise SchemaError(f"causal DAG is missing schema attributes: {missing}")


def named_dag_variants(
    schema: Schema, original: CausalDAG, pc: CausalDAG | None = None
) -> dict[str, CausalDAG]:
    """The Table 6 DAG suite keyed by the paper's row labels."""
    variants = {
        "Original causal DAG": original,
        "1-Layer Indep DAG": one_layer_independent_dag(schema),
        "2-Layer Mutable DAG": two_layer_mutable_dag(schema),
        "2-Layer DAG": two_layer_dag(schema),
    }
    if pc is not None:
        variants["PC DAG"] = pc
    return variants
