"""Backdoor adjustment-set selection (Sec. 3: unconfoundedness via Z).

The paper estimates ``CATE(T, O | B=b)`` under the unconfoundedness
assumption ``O ⊥⊥ T | Z`` where ``Z`` is a set of covariates satisfying
Pearl's backdoor criterion relative to ``(T, O)``:

1. no node of ``Z`` is a descendant of any treatment node, and
2. ``Z`` blocks every path between ``T`` and ``O`` that starts with an edge
   *into* ``T`` (equivalently: ``T`` and ``O`` are d-separated by ``Z`` in
   the graph with all edges out of ``T`` removed).

``parents(T)`` always satisfies the criterion, and is what this module
returns by default; :func:`minimal_backdoor_set` then greedily prunes it,
which both shrinks the adjustment design matrix and improves the positivity
profile of the stratified estimator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.utils.errors import EstimationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.causal.dag import CausalDAG


def _as_tuple(nodes: Iterable[str]) -> tuple[str, ...]:
    result = tuple(nodes)
    if not result:
        raise EstimationError("treatment set must be non-empty")
    return result


def is_valid_backdoor_set(
    dag: "CausalDAG",
    treatments: Iterable[str],
    outcome: str,
    adjustment: Iterable[str],
) -> bool:
    """Check Pearl's backdoor criterion for ``adjustment`` w.r.t. (T, O)."""
    treatments = _as_tuple(treatments)
    adjustment = tuple(adjustment)
    treat_set = set(treatments)
    if outcome in treat_set:
        raise EstimationError("outcome cannot be a treatment attribute")
    if set(adjustment) & treat_set or outcome in adjustment:
        return False

    # Condition 1: no adjustment node descends from a treatment.
    for t in treatments:
        if set(adjustment) & dag.descendants(t):
            return False

    # Condition 2: Z d-separates T and O in the backdoor graph.
    backdoor_graph = dag.without_outgoing_edges(treatments)
    return backdoor_graph.d_separated(treatments, [outcome], adjustment)


def parents_adjustment_set(
    dag: "CausalDAG",
    treatments: Iterable[str],
    outcome: str,
) -> tuple[str, ...]:
    """The parents-of-treatments set (minus treatments and the outcome).

    For a *single* treatment this is always a valid backdoor set.  For
    compound treatments whose constituents causally influence each other's
    parents (e.g. ``Education -> Role -> HoursComputer`` when intervening on
    ``{Education, HoursComputer}``), no strict backdoor set may exist; this
    union-of-parents set is then the practical adjustment CauSumX/DoWhy use
    when the conjunction is modelled as one binary treatment.  FairCap falls
    back to it in exactly that case (see
    :meth:`repro.rules.utility.RuleEvaluator.adjustment_for`).
    """
    treatments = _as_tuple(treatments)
    treat_set = set(treatments)
    parents: set[str] = set()
    for t in treatments:
        if t not in dag:
            raise EstimationError(f"treatment {t!r} not in causal DAG")
        parents |= set(dag.parents(t))
    return tuple(sorted(parents - treat_set - {outcome}))


def backdoor_adjustment_set(
    dag: "CausalDAG",
    treatments: Iterable[str],
    outcome: str,
) -> tuple[str, ...]:
    """Return a valid backdoor adjustment set for ``treatments`` -> ``outcome``.

    Uses the parents-of-treatments set (minus treatments and the outcome),
    which is always sufficient, then prunes it to a minimal subset.

    Raises
    ------
    EstimationError
        If a treatment or the outcome is missing from the DAG.
    """
    treatments = _as_tuple(treatments)
    if outcome not in dag:
        raise EstimationError(f"outcome {outcome!r} not in causal DAG")
    for t in treatments:
        if t not in dag:
            raise EstimationError(f"treatment {t!r} not in causal DAG")

    candidate = parents_adjustment_set(dag, treatments, outcome)
    if not is_valid_backdoor_set(dag, treatments, outcome, candidate):
        # Happens only for compound treatments whose constituents influence
        # each other's parents; callers that accept the practical
        # approximation should catch this and use parents_adjustment_set.
        raise EstimationError(
            f"no valid backdoor set found for T={treatments}, O={outcome!r}"
        )
    return minimal_backdoor_set(dag, treatments, outcome, candidate)


def minimal_backdoor_set(
    dag: "CausalDAG",
    treatments: Iterable[str],
    outcome: str,
    adjustment: Iterable[str],
) -> tuple[str, ...]:
    """Greedily shrink a valid ``adjustment`` set while it stays valid.

    Variables are dropped one at a time (deterministic order) whenever the
    remainder still satisfies the backdoor criterion.  The result is minimal
    in the sense that no single further removal is possible; it is not
    guaranteed to be of minimum cardinality (that problem is harder and
    unnecessary here).
    """
    treatments = _as_tuple(treatments)
    current = list(adjustment)
    if not is_valid_backdoor_set(dag, treatments, outcome, current):
        raise EstimationError(
            f"adjustment set {sorted(current)} is not a valid backdoor set"
        )
    changed = True
    while changed:
        changed = False
        for node in sorted(current):
            reduced = [z for z in current if z != node]
            if is_valid_backdoor_set(dag, treatments, outcome, reduced):
                current = reduced
                changed = True
                break
    return tuple(sorted(current))
