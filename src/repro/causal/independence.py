"""Conditional-independence tests for causal discovery.

Two classical tests back the PC algorithm (:mod:`repro.causal.discovery`):

- **Fisher's z** on partial correlations for all-continuous triples
  ``(X, Y | Z)``, computed from the inverse of the correlation matrix;
- the **G² (log-likelihood ratio) test** on contingency tables for
  categorical data, summing the statistic over the cells of the conditioning
  set with matching degrees of freedom.

Mixed queries discretise the continuous columns into quantile bins and fall
back to G².  :class:`CITester` wraps a :class:`~repro.tabular.Table` and
dispatches to the right test per query.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats

from repro.tabular.column import CategoricalColumn, NumericColumn
from repro.tabular.table import Table
from repro.utils.errors import EstimationError


def fisher_z_test(
    data: np.ndarray, x: int, y: int, zs: tuple[int, ...] = ()
) -> float:
    """p-value of ``X ⊥⊥ Y | Z`` for jointly Gaussian-ish continuous data.

    Parameters
    ----------
    data:
        ``(n, p)`` float matrix.
    x, y:
        Column indices being tested.
    zs:
        Conditioning column indices.
    """
    n = data.shape[0]
    involved = (x, y, *zs)
    sub = data[:, involved]
    if n - len(zs) - 3 <= 0:
        return 1.0  # too few samples to reject anything
    corr = np.corrcoef(sub, rowvar=False)
    if corr.ndim == 0:  # single column edge case
        return 1.0
    try:
        precision = np.linalg.pinv(corr)
    except np.linalg.LinAlgError:  # pragma: no cover - pinv rarely fails
        return 1.0
    denominator = math.sqrt(abs(precision[0, 0] * precision[1, 1]))
    if denominator == 0:
        return 1.0
    partial = -precision[0, 1] / denominator
    partial = float(np.clip(partial, -0.999999, 0.999999))
    z_value = 0.5 * math.log((1 + partial) / (1 - partial))
    statistic = math.sqrt(n - len(zs) - 3) * abs(z_value)
    return float(2.0 * stats.norm.sf(statistic))


def g_square_test(
    codes: np.ndarray,
    cardinalities: tuple[int, ...],
    x: int,
    y: int,
    zs: tuple[int, ...] = (),
) -> float:
    """p-value of the G² conditional-independence test on coded data.

    Parameters
    ----------
    codes:
        ``(n, p)`` integer matrix of category codes.
    cardinalities:
        Number of categories per column.
    x, y:
        Column indices being tested.
    zs:
        Conditioning column indices.
    """
    n = codes.shape[0]
    card_x, card_y = cardinalities[x], cardinalities[y]
    if card_x < 2 or card_y < 2:
        return 1.0  # a constant column is independent of everything

    if zs:
        # Combine conditioning columns into one stratum id.
        stratum = np.zeros(n, dtype=np.int64)
        for z in zs:
            stratum = stratum * cardinalities[z] + codes[:, z]
    else:
        stratum = np.zeros(n, dtype=np.int64)

    g_stat = 0.0
    dof = 0
    for value in np.unique(stratum):
        rows = stratum == value
        if not rows.any():
            continue
        table = np.zeros((card_x, card_y), dtype=np.float64)
        np.add.at(table, (codes[rows, x], codes[rows, y]), 1.0)
        row_sums = table.sum(axis=1, keepdims=True)
        col_sums = table.sum(axis=0, keepdims=True)
        total = table.sum()
        if total == 0:
            continue
        expected = row_sums @ col_sums / total
        observed = table
        with np.errstate(divide="ignore", invalid="ignore"):
            terms = observed * np.log(observed / expected)
        g_stat += 2.0 * float(np.nansum(terms))
        nonzero_rows = int((row_sums > 0).sum())
        nonzero_cols = int((col_sums > 0).sum())
        dof += max(nonzero_rows - 1, 0) * max(nonzero_cols - 1, 0)
    if dof <= 0:
        return 1.0
    return float(stats.chi2.sf(max(g_stat, 0.0), df=dof))


class CITester:
    """Conditional-independence oracle over a :class:`Table`.

    Dispatch: all-continuous queries use Fisher's z; anything involving a
    categorical column uses G² with continuous columns quantile-discretised
    into ``n_bins`` bins (computed once at construction).
    """

    def __init__(self, table: Table, n_bins: int = 4) -> None:
        if table.n_rows == 0:
            raise EstimationError("cannot test independence on an empty table")
        self.names: tuple[str, ...] = table.column_names
        self._index = {name: i for i, name in enumerate(self.names)}
        self._continuous: dict[str, np.ndarray] = {}
        codes_cols: list[np.ndarray] = []
        cardinalities: list[int] = []
        for name in self.names:
            column = table.column(name)
            if isinstance(column, NumericColumn):
                values = column.decode()
                self._continuous[name] = values
                edges = np.unique(
                    np.quantile(values, np.linspace(0, 1, n_bins + 1)[1:-1])
                )
                codes = np.searchsorted(edges, values, side="right")
                codes_cols.append(codes.astype(np.int64))
                cardinalities.append(len(edges) + 1)
            else:
                assert isinstance(column, CategoricalColumn)
                codes_cols.append(column.codes.astype(np.int64))
                cardinalities.append(len(column.categories))
        self._codes = np.column_stack(codes_cols)
        self._cardinalities = tuple(cardinalities)

    def _col(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise EstimationError(f"unknown attribute {name!r}") from None

    def p_value(self, x: str, y: str, zs: tuple[str, ...] = ()) -> float:
        """p-value of ``x ⊥⊥ y | zs`` (higher = more compatible with CI)."""
        involved = (x, y, *zs)
        if all(name in self._continuous for name in involved):
            data = np.column_stack([self._continuous[n] for n in involved])
            return fisher_z_test(data, 0, 1, tuple(range(2, len(involved))))
        return g_square_test(
            self._codes,
            self._cardinalities,
            self._col(x),
            self._col(y),
            tuple(self._col(z) for z in zs),
        )

    def independent(
        self, x: str, y: str, zs: tuple[str, ...] = (), alpha: float = 0.05
    ) -> bool:
        """Decision version: True iff the test fails to reject CI at ``alpha``."""
        return self.p_value(x, y, zs) > alpha
