"""Batched Frisch-Waugh-Lovell CATE estimation: one GEMM per lattice level.

Step 2 of FairCap evaluates hundreds of intervention candidates against the
*same* (sub-table, adjustment set, outcome) triple — within one lattice
level only the treated column of the OLS design differs between candidates.
The scalar path (:class:`~repro.causal.estimators.LinearAdjustmentEstimator`)
nevertheless pays a full ``lstsq`` *and* a dense covariance factorization per
candidate, rebuilding identical one-hot adjustment blocks every time.

This module factors the shared work out once and amortises it over the whole
level via the Frisch-Waugh-Lovell theorem.  Write the design as
``X = [t, W]`` with ``W = [1, Z-block]``; residualise both the treated
indicator and the outcome against ``col(W)``::

    t̃ = t - Q Qᵀ t          ỹ = y - Q Qᵀ y

where ``Q`` is a thin orthonormal basis of ``col(W)``.  Then the OLS
coefficient of ``t`` is ``β = (t̃·ỹ) / (t̃·t̃)``, its sampling variance is
``s² / (t̃·t̃)``, and the residual sum of squares of the *full* regression is
``ỹ·ỹ - (t̃·ỹ)²/(t̃·t̃)``.  The identity for the variance holds even when
``W`` is rank deficient (absent one-hot categories, collinear adjustment
columns): the ``t``-coefficient of the minimum-norm least-squares solution is
the unique functional ``y ↦ t̃·y / t̃·t̃`` whenever ``t ∉ col(W)``, so the
``t`` row of ``X⁺`` is ``t̃ᵀ/(t̃·t̃)`` and ``(XᵀX)⁺_tt = 1/(t̃·t̃)`` — exactly
what the scalar path reads off ``pinv``.

:class:`DesignFactorization` captures ``Q``, the rank of ``W``, and the
residualised outcome — computed once per (table, adjustment, outcome) and
cacheable (see :class:`~repro.parallel.cache.EstimationCache`).
:func:`estimate_cate_batch` residualises an ``(n, m)`` stack of treated
masks in one GEMM pair and reads off all ``m`` estimates, standard errors
and t-test p-values vectorised; :func:`estimate_cate_level` drives a whole
lattice level — several adjustment groups over one treated-mask stack —
through that machinery with the per-call fixed costs (dtype conversion,
positivity screening, the t-tail evaluation) paid once.

Exactness contract
------------------
Results agree with the scalar path to floating-point working precision
(differentially tested at rtol 1e-9).  Candidates the FWL identities do not
cover bit-identically fall back to the scalar ``ols()`` path per column:

- ``t`` numerically inside ``col(W)`` (the full design is rank deficient);
- an ill-conditioned ``W`` whose numerical rank is ambiguous under the
  ``lstsq`` cutoff rule;
- a numerically perfect fit (RSS at rounding level), where the FWL RSS
  identity loses relative accuracy.

Per-column determinism: each column's estimate is a pure function of that
column, the factorization, and the *batch shape* — BLAS GEMM kernels round
identically under column permutation at a fixed width, but not across
different widths.  Callers that must be bit-reproducible across executors
therefore key caches by the whole batch (see ``EstimationCache.level_key``),
never by single columns computed inside different batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import linalg as scipy_linalg
from scipy import special
from scipy.linalg import blas, lapack

from repro.causal.estimators import (
    POSITIVITY_REASON,
    CateResult,
    LinearAdjustmentEstimator,
    _outcome_vector,
)
from repro.causal.linalg import one_hot
from repro.obs.runtime import current as obs_current
from repro.tabular.column import CategoricalColumn
from repro.tabular.table import Table
from repro.utils.errors import EstimationError

# Guard thresholds for the scalar fallback (see module docstring).  The
# rank cutoff mirrors numpy's lstsq rcond rule; CONDITION_MARGIN widens it
# so designs whose rank determination is ambiguous between the W-SVD here
# and the X-SVD inside lstsq are routed to the scalar path instead of
# risking an off-by-one dof.  RCOND_FAST_PATH is the dtrcon estimate above
# which a design is certified clean without computing singular values.
CONDITION_MARGIN = 1e3
RCOND_FAST_PATH = 1e-7
RESIDUAL_TOL = 1e-10  # ‖t̃‖²/‖t‖² below this -> t ∈ col(W) numerically
PERFECT_FIT_TOL = 1e-12  # RSS/‖ỹ‖² below this -> scalar path
# Condition gate of the Gram (normal-equations) factorization: its
# projector loses ~kappa(W)^2 * eps of relative accuracy, so requiring
# rcond(R) >= 1e-3 keeps Gram-path estimates ~1e-10-accurate — inside the
# rtol-1e-9 differential contract — and routes anything worse to the QR
# build, whose certification logic is the reference.
GRAM_RCOND_MIN = 1e-3

_SCALAR_FALLBACK = LinearAdjustmentEstimator()

# Lazily-bound handle to repro.parallel.shm (a causal -> parallel module
# import would be cyclic at load time).  Stays None until the first
# cache-miss lookup; the lookup itself is a no-op dictionary probe in
# every process that never attached a shared-memory segment.
_shm = None


def _shared_lookup(table: Table, key):
    """A worker-attached shared-memory buffer for a per-table cache key."""
    global _shm
    if _shm is None:
        from repro.parallel import shm

        _shm = shm
    return _shm.lookup(table, key)

_POSITIVITY = POSITIVITY_REASON
_DEGENERATE = "degenerate fit: no residual degrees of freedom"


#: Precomputed label keys for the factorization-route counter: the one
#: per-event hot site that fires on every factorization build.
_ROUTE_KEYS = {
    route: f"route={route}"
    for route in ("gram", "gram_subtracted", "gram_reduced", "qr", "qr_collinear")
}


def _count_route(route: str) -> None:
    """Factorization route counter (Gram fast path vs QR reference).

    Engine counters like this one are *not* in the deterministic family:
    with a cache attached, whether a (table, adjustment) pair is factorized
    at all depends on cache state, which differs between one shared serial
    cache and per-worker seeded caches.
    """
    telemetry = obs_current()
    if telemetry.enabled:
        telemetry.registry.inc_key("estimation.factorizations", _ROUTE_KEYS[route])


def _count_scalar_fallbacks(kernel: str, reason: str, count: int) -> None:
    """Columns answered by the scalar OLS path instead of the FWL identities."""
    if count:
        telemetry = obs_current()
        if telemetry.enabled:
            telemetry.registry.inc(
                "estimation.scalar_fallbacks", count, kernel=kernel, reason=reason
            )


def _count_degenerate_fits(kernel: str, count: int) -> None:
    """Columns rejected with no residual degrees of freedom."""
    if count:
        telemetry = obs_current()
        if telemetry.enabled:
            telemetry.registry.inc("estimation.degenerate_fits", count, kernel=kernel)


@dataclass(frozen=True)
class DesignFactorization:
    """Orthonormal factorization of the shared design block ``W = [1, Z]``.

    Attributes
    ----------
    q:
        ``(n, r)`` orthonormal basis of ``col(W)``.
    rank:
        Numerical rank ``r`` of ``W`` under the ``lstsq`` cutoff rule.
    y_res:
        The outcome residualised against ``col(W)`` (``ỹ``).
    y_res_sq:
        Cached ``ỹ·ỹ``.
    n:
        Row count of the underlying table.
    degenerate:
        True when ``W`` is rank deficient beyond exactly-zero columns or
        ill-conditioned near the rank cutoff; every estimate against a
        degenerate factorization takes the scalar fallback path.
    """

    q: np.ndarray
    rank: int
    y_res: np.ndarray
    y_res_sq: float
    n: int
    degenerate: bool


def _attribute_block(table: Table, name: str) -> np.ndarray:
    """Encoded design columns of one adjustment attribute, memoised per table.

    Same encoding as :func:`repro.causal.estimators._encode_adjustment`:
    categoricals one-hot with the first category dropped, continuous as-is.
    The same attribute appears in many adjustment sets of one sub-table
    (every treatment whose backdoor set contains it), so the block rides on
    the immutable table like its fingerprint does.
    """
    cache = table.__dict__.setdefault("_design_block_cache", {})
    block = cache.get(name)
    if block is None:
        block = _shared_lookup(table, ("block", name))
    if block is None:
        column = table.column(name)
        if isinstance(column, CategoricalColumn):
            block = one_hot(column.codes, len(column.categories))
        else:
            block = column.decode().reshape(-1, 1).astype(np.float64, copy=False)
    cache[name] = block
    return block


def _attribute_block_t(table: Table, name: str) -> np.ndarray:
    """C-contiguous transpose of :func:`_attribute_block`, memoised too.

    Design assembly copies whole attribute blocks; doing it in the
    transposed layout turns strided column writes into contiguous row
    memcpys, and the resulting Fortran-order ``W`` view is what LAPACK and
    BLAS natively consume (``dgeqrf``'s ``overwrite_a`` only avoids its
    internal copy for Fortran-contiguous input).
    """
    cache = table.__dict__.setdefault("_design_block_t_cache", {})
    block_t = cache.get(name)
    if block_t is None:
        block_t = _shared_lookup(table, ("block_t", name))
    if block_t is None:
        block_t = np.ascontiguousarray(_attribute_block(table, name).T)
    cache[name] = block_t
    return block_t


def _build_design_block(table: Table, adjustment: tuple[str, ...]) -> np.ndarray:
    """Assemble ``W = [1, Z-block]`` (Fortran order) from cached blocks."""
    n = table.n_rows
    blocks_t = [_attribute_block_t(table, name) for name in adjustment]
    total = 1 + sum(block.shape[0] for block in blocks_t)
    w_t = np.empty((total, n), dtype=np.float64)
    w_t[0] = 1.0
    offset = 1
    for block in blocks_t:
        width = block.shape[0]
        w_t[offset : offset + width] = block
        offset += width
    return w_t.T


def _rank_from_singular_values(
    r_factor: np.ndarray, shape: tuple[int, int]
) -> tuple[int, bool]:
    """(rank, shaky) from the singular values of the triangular factor."""
    s = np.linalg.svd(r_factor, compute_uv=False)
    cutoff = max(shape) * np.finfo(np.float64).eps * s[0]
    rank = int((s > cutoff).sum())
    shaky = bool(((s > cutoff) & (s < CONDITION_MARGIN * cutoff)).any())
    return rank, shaky


def build_factorization(
    table: Table, outcome: str, adjustment: tuple[str, ...] = ()
) -> DesignFactorization:
    """Factorize ``[1, Z-block]`` for one (table, adjustment, outcome) triple.

    One thin QR per triple; every lattice level sharing the triple reuses
    the result.  Rank and conditioning are certified on the small
    triangular factor: a LAPACK ``dtrcon`` estimate fast-paths the
    well-conditioned common case, and only suspicious designs pay an SVD of
    ``R`` (whose singular values equal ``W``'s, so the rank cutoff matches
    ``lstsq``'s rule).  Exactly-zero adjustment columns (one-hot categories
    absent from the sub-table) deflate cleanly — they contribute nothing to
    the basis and the rank, matching ``lstsq``'s treatment of them in the
    scalar path.
    """
    y = _outcome_vector(table, outcome)
    n = table.n_rows
    if n == 0:
        raise EstimationError("cannot factorize an empty design")
    w = _build_design_block(table, adjustment)
    n_cols = w.shape[1]

    rank = n_cols
    degenerate = False
    if n_cols > n:  # wide design: trivially deficient
        degenerate = True
        q = np.empty((n, 0), dtype=np.float64)  # unused on the scalar path
    else:
        # Raw LAPACK spelling of scipy.linalg.qr(mode="economic"): same
        # bits, none of the wrapper overhead — this runs ~1.4k times per
        # German Table-4 mining run.  ``w`` is freshly assembled above and
        # ``qr_t`` is ours, so both factorization steps may overwrite their
        # inputs in place instead of paying an (n, k) copy each.
        lwork = int(lapack.dgeqrf_lwork(n, n_cols)[0])
        qr_t, tau, _, info = lapack.dgeqrf(w, lwork=lwork, overwrite_a=1)
        if info != 0:  # pragma: no cover - LAPACK input errors
            raise EstimationError(f"dgeqrf failed with info={info}")
        r_factor = qr_t[:n_cols, :n_cols]  # sub-diagonal junk is ignored
        diag = np.abs(r_factor.diagonal())
        if diag.size and diag.min() == 0.0:
            degenerate = True  # exactly singular; maybe just zero columns
        else:
            rcond = lapack.dtrcon(r_factor, norm="1", uplo="U", diag="N")[0]
            if rcond < RCOND_FAST_PATH:
                rank, shaky = _rank_from_singular_values(
                    np.triu(r_factor), w.shape
                )
                degenerate = rank < n_cols or shaky
        q, _, info = lapack.dorgqr(qr_t, tau, lwork=lwork, overwrite_a=1)
        if info != 0:  # pragma: no cover - LAPACK input errors
            raise EstimationError(f"dorgqr failed with info={info}")
    if degenerate:
        # Zero columns (absent one-hot categories) deflate cleanly: drop
        # them and re-factorize; any other deficiency keeps the
        # factorization degenerate and takes the scalar fallback per
        # column.  The first QR consumed ``w`` in place (overwrite_a), so
        # this rare branch reassembles it from the cached blocks.
        w = _build_design_block(table, adjustment)
        nonzero = np.abs(w).max(axis=0) > 0.0
        if not nonzero.all():
            reduced = np.ascontiguousarray(w[:, nonzero])
            if reduced.shape[1] <= n:
                q2, r2 = scipy_linalg.qr(
                    reduced, mode="economic", overwrite_a=True, check_finite=False
                )
                rank, shaky = _rank_from_singular_values(r2, reduced.shape)
                if rank == reduced.shape[1] and not shaky:
                    q = q2
                    degenerate = False

    _count_route("qr_collinear" if degenerate else "qr")
    if degenerate:
        # Basis unused on the degenerate path; keep fields consistent.
        rank = min(rank, q.shape[1])
    q = q[:, :rank] if q.shape[1] != rank else q
    # C-contiguous basis: LAPACK hands back Fortran order, under which the
    # projection GEMM's per-column rounding depends on the column position;
    # row-major Q keeps batch results bit-invariant under column
    # permutation (the property the differential suite pins down).
    q = np.ascontiguousarray(q)
    y_res = y - q @ (q.T @ y)
    return DesignFactorization(
        q=q,
        rank=rank,
        y_res=y_res,
        y_res_sq=float(y_res @ y_res),
        n=n,
        degenerate=degenerate,
    )


def _resolve(factorization, table, outcome, adjustment) -> DesignFactorization:
    if factorization is None:
        return build_factorization(table, outcome, adjustment)
    if callable(factorization):
        return factorization()
    return factorization


@dataclass(frozen=True)
class GramFactorization:
    """Normal-equations factorization of ``W`` for the row-major kernel.

    Holds the design block plus the inverse of its Gram matrix ``G = WᵀW``
    (through its Cholesky factor): the FWL projection becomes
    ``t̃ = t - (t W) G⁻¹ Wᵀ`` — the same two big GEMMs as the Q-based
    spelling — but the *build* skips the Householder QR entirely, and on
    the fast path never runs a syrk either: ``G``'s blocks are pairwise
    products of per-attribute design blocks, which repeat across the many
    adjustment sets of one table and are therefore memoised on the table
    (:func:`_gram_pair`), so a typical build is a handful of tiny copies,
    k×k LAPACK, and one assembly of ``W`` for the projection GEMMs.  That
    setup cost is what dominates Step-2 mining once everything else is
    batched.

    Only well-conditioned designs get here (see
    :func:`build_rows_factorization`): anything whose Cholesky fails or
    whose ``rcond`` falls under :data:`GRAM_RCOND_MIN` is routed to
    :func:`build_factorization` — so degenerate handling, and its
    bit-exact scalar fallback, stay byte-for-byte the QR path's.
    """

    w: np.ndarray  # (n, k) design block (zero columns dropped on slow path)
    gram_inv: np.ndarray  # (k, k) inverse of WᵀW
    rank: int
    y_res: np.ndarray
    y_res_sq: float
    n: int
    degenerate: bool = False


def _gram_cache(table: Table) -> dict:
    return table.__dict__.setdefault("_gram_block_cache", {})


def _merge_shard_arrays(table, stat) -> np.ndarray:
    """Accumulate a row-additive array statistic shard by shard.

    The accumulation order is the fixed shard order, so the result is
    deterministic for a given shard layout regardless of who computes it
    (serial, thread, or process workers) — the same composition contract
    PR 5's frontier established.  One-hot cross products and column sums
    are integer-valued, so their merge is *exact*; continuous entries are
    shard-order-deterministic floating sums.
    """
    total: np.ndarray | None = None
    for shard in table.iter_shards():
        part = stat(shard)
        if total is None:
            total = np.array(part, dtype=np.float64, copy=True)
        else:
            total += part
    assert total is not None  # sharded tables always have >= 1 shard
    return total


def _block_column_sums(table: Table, name: str) -> np.ndarray:
    """Column sums of one attribute's design block (= its ``1ᵀ block`` row)."""
    cache = _gram_cache(table)
    key = ("sums", name)
    sums = cache.get(key)
    if sums is None:
        sums = _shared_lookup(table, key)
    if sums is None:
        if getattr(table, "is_sharded", False):
            sums = _merge_shard_arrays(
                table, lambda shard: _block_column_sums(shard, name)
            )
        else:
            sums = _attribute_block(table, name).sum(axis=0)
    cache[key] = sums
    return sums


def _gram_pair(table: Table, a: str, b: str) -> np.ndarray:
    """``block(a)ᵀ block(b)``, memoised per table under the sorted pair."""
    cache = _gram_cache(table)
    first, second = (a, b) if a <= b else (b, a)
    key = ("pair", first, second)
    product = cache.get(key)
    if product is None:
        product = _shared_lookup(table, key)
    if product is None:
        if getattr(table, "is_sharded", False):
            product = _merge_shard_arrays(
                table, lambda shard: _gram_pair(shard, first, second)
            )
        else:
            product = (
                _attribute_block(table, first).T @ _attribute_block(table, second)
            )
    cache[key] = product
    return product if (a, b) == (first, second) else product.T


def _outcome_block_products(table: Table, outcome: str, name: str) -> np.ndarray:
    """``yᵀ block(name)``, memoised per (outcome, attribute) per table."""
    cache = _gram_cache(table)
    key = ("y", outcome, name)
    product = cache.get(key)
    if product is None:
        product = _shared_lookup(table, key)
    if product is None:
        if getattr(table, "is_sharded", False):
            product = _merge_shard_arrays(
                table, lambda shard: _outcome_block_products(shard, outcome, name)
            )
        else:
            product = _outcome_vector(table, outcome) @ _attribute_block(table, name)
    cache[key] = product
    return product


def _outcome_sum(table: Table, outcome: str) -> float:
    """``yᵀ1`` (the outcome's intercept component), memoised per table."""
    cache = _gram_cache(table)
    key = ("ysum", outcome)
    total = cache.get(key)
    if total is None:
        total = _shared_lookup(table, key)
        if total is not None:
            total = float(np.asarray(total).reshape(-1)[0])
    if total is None:
        if getattr(table, "is_sharded", False):
            total = 0.0
            for shard in table.iter_shards():
                total += _outcome_sum(shard, outcome)
        else:
            total = float(_outcome_vector(table, outcome).sum())
    cache[key] = total
    return total


def _assemble_gram(
    table: Table, adjustment: tuple[str, ...], widths: list[int], k: int
) -> np.ndarray:
    """Assemble the upper triangle of ``G = WᵀW`` from memoised products.

    The strict lower triangle is left zero — dpotrf/dpotri only read the
    upper, and the mirror step after dpotri relies on zeros below.
    """
    gram = np.zeros((k, k))
    gram[0, 0] = float(table.n_rows)
    offsets = np.cumsum([1] + widths).tolist()
    for i, name in enumerate(adjustment):
        gram[0, offsets[i] : offsets[i + 1]] = _block_column_sums(table, name)
        for j in range(i, len(adjustment)):
            gram[
                offsets[i] : offsets[i + 1], offsets[j] : offsets[j + 1]
            ] = _gram_pair(table, name, adjustment[j])
    return gram


def _finish_gram(gram):
    """Cholesky + condition gate + mirrored inverse; None -> QR fallback."""
    r_factor, info = lapack.dpotrf(gram, lower=0)
    if info != 0:  # not positive definite: rank deficient
        return None
    rcond = lapack.dtrcon(r_factor, norm="1", uplo="U", diag="N")[0]
    if rcond < GRAM_RCOND_MIN:
        return None
    gram_inv, info = lapack.dpotri(r_factor, lower=0)
    if info != 0:  # pragma: no cover - dpotri after a clean dpotrf
        return None
    # dpotri fills the upper triangle only (the strict lower is still the
    # zeros left there); mirror without np.triu's mask machinery.
    diagonal_inv = gram_inv.diagonal().copy()
    gram_inv = gram_inv + gram_inv.T
    np.fill_diagonal(gram_inv, diagonal_inv)
    return gram_inv


def _subtracted_rows_factorization(
    table: Table,
    outcome: str,
    adjustment: tuple[str, ...],
    widths: list[int],
    k: int,
    donor: tuple[Table, Table],
):
    """Derive ``G = WᵀW`` from the partition identity ``G(parent) - G(sibling)``.

    A grouping context's protected/non-protected sub-populations partition
    its subtable, so one side's Gram blocks equal the parent's minus the
    other side's — O(k²) subtractions against the parent's memoised pair
    products instead of an O(n·k²) re-accumulation.  The caller attaches
    the donor to the *larger* side (cheaper: the smaller side's direct
    accumulation warms the sibling Grams; safer: derived entries are
    comparable in magnitude to the parent's, bounding cancellation).
    One-hot cross products are integer-valued counts, so their subtraction
    is exact; continuous entries cancel at worst ~eps·|parent| — well
    inside what the :data:`GRAM_RCOND_MIN` gate certifies.  Any doubt
    (partition mismatch, non-positive derived diagonal, failed Cholesky,
    rcond below the gate) returns None and the caller re-runs the standard
    accumulate/QR routing, keeping certification and the bit-exact scalar
    fallback unchanged.
    """
    parent, sibling = donor
    n = table.n_rows
    if parent.n_rows - sibling.n_rows != n:
        return None  # not a partition; donor misuse
    gram = _assemble_gram(parent, adjustment, widths, k)
    gram -= _assemble_gram(sibling, adjustment, widths, k)
    gram[0, 0] = float(n)
    # Fast path only: a non-positive derived diagonal (category absent
    # from this side, or a continuous column cancelling to rounding noise)
    # goes back to the direct build, whose reduced-design slow path owns
    # zero-column handling.
    if not (gram.diagonal() > 0.0).all():
        return None
    gram_inv = _finish_gram(gram)
    if gram_inv is None:
        return None
    w = _build_design_block(table, adjustment)
    y = _outcome_vector(table, outcome)
    wy = np.empty(k)
    wy[0] = _outcome_sum(table, outcome)
    offset = 1
    for name, width in zip(adjustment, widths):
        wy[offset : offset + width] = _outcome_block_products(table, outcome, name)
        offset += width
    y_res = blas.dgemv(-1.0, w, gram_inv @ wy, beta=1.0, y=y.copy(), overwrite_y=1)
    _count_route("gram_subtracted")
    telemetry = obs_current()
    if telemetry.enabled:
        telemetry.registry.inc("factorization.gram_subtracted", 1)
    return GramFactorization(
        w=w,
        gram_inv=gram_inv,
        rank=k,
        y_res=y_res,
        y_res_sq=float(y_res @ y_res),
        n=n,
    )


def build_rows_factorization(
    table: Table,
    outcome: str,
    adjustment: tuple[str, ...] = (),
    donor: tuple[Table, Table] | None = None,
):
    """Factorize ``[1, Z-block]`` for the fused row-major kernel.

    Fast path: block-structured Gram/Cholesky (:class:`GramFactorization`)
    from per-table memoised pair products, no ``W`` materialisation.
    Exactly-zero columns (absent one-hot categories) take a materialised
    slow path that drops them off the Gram diagonal; any design the
    condition gate rejects falls back to the QR build, whose
    :class:`DesignFactorization` the kernel consumes interchangeably.

    ``donor`` — a ``(parent, sibling)`` pair of tables partitioned by this
    one — switches the Gram assembly to the subtraction identity
    (:func:`_subtracted_rows_factorization`); any failure there falls
    through to the standard routing above.  A subtraction-built
    factorization's bits differ from a directly-accumulated one's (within
    the rtol-1e-9 contract), so callers that cache results must key by the
    donor's identity too (see ``EstimationCache.get_or_factorize_rows``).
    """
    n = table.n_rows
    if n == 0:
        raise EstimationError("cannot factorize an empty design")
    if getattr(table, "is_sharded", False):
        # Widths come off the schema: no whole-table block materialisation
        # for out-of-core tables (their Gram entries merge from shards).
        widths = [
            len(table.categories(name)) - 1
            if table.schema.spec(name).kind.value == "categorical"
            else 1
            for name in adjustment
        ]
    else:
        widths = [_attribute_block(table, name).shape[1] for name in adjustment]
    k = 1 + sum(widths)
    if k > n:
        return build_factorization(table, outcome, adjustment)
    if donor is not None:
        factorization = _subtracted_rows_factorization(
            table, outcome, adjustment, widths, k, donor
        )
        if factorization is not None:
            return factorization
    gram = _assemble_gram(table, adjustment, widths, k)
    if gram.diagonal().all():
        gram_inv = _finish_gram(gram)
        if gram_inv is None:
            return build_factorization(table, outcome, adjustment)
        w = _build_design_block(table, adjustment)
        y = _outcome_vector(table, outcome)
        wy = np.empty(k)
        wy[0] = _outcome_sum(table, outcome)
        offset = 1
        for name, width in zip(adjustment, widths):
            wy[offset : offset + width] = _outcome_block_products(
                table, outcome, name
            )
            offset += width
        # One fused GEMV: y_res = y - W (G^-1 Wᵀy), accumulated in place.
        y_res = blas.dgemv(
            -1.0, w, gram_inv @ wy, beta=1.0, y=y.copy(), overwrite_y=1
        )
        _count_route("gram")
        return GramFactorization(
            w=w,
            gram_inv=gram_inv,
            rank=k,
            y_res=y_res,
            y_res_sq=float(y_res @ y_res),
            n=n,
        )

    # Slow path: absent one-hot categories leave exactly-zero columns.
    # Subselect the already-assembled Gram instead of re-running a syrk
    # over a materialised reduced design: a zero column contributes nothing
    # to any cross product, so dropping its row/column of ``G`` *is* the
    # reduced design's Gram, built from the same memoised (or, for
    # out-of-core tables, shard-merged) pair products as the fast path.
    # Sorted index subselection preserves the upper-triangular/zero-lower
    # layout ``_finish_gram`` relies on.
    nonzero = gram.diagonal().copy()
    nonzero[0] = float(n)  # the intercept column is never zero
    nonzero = nonzero > 0.0
    keep = np.flatnonzero(nonzero)
    reduced = np.ascontiguousarray(gram[np.ix_(keep, keep)])
    gram_inv = _finish_gram(reduced)
    if gram_inv is None:
        return build_factorization(table, outcome, adjustment)
    y = _outcome_vector(table, outcome)
    w = np.ascontiguousarray(_build_design_block(table, adjustment)[:, nonzero])
    wy_full = np.empty(k)
    wy_full[0] = _outcome_sum(table, outcome)
    offset = 1
    for name, width in zip(adjustment, widths):
        wy_full[offset : offset + width] = _outcome_block_products(
            table, outcome, name
        )
        offset += width
    wy = wy_full[keep]
    y_res = blas.dgemv(-1.0, w, gram_inv @ wy, beta=1.0, y=y.copy(), overwrite_y=1)
    _count_route("gram_reduced")
    return GramFactorization(
        w=w,
        gram_inv=gram_inv,
        rank=keep.size,
        y_res=y_res,
        y_res_sq=float(y_res @ y_res),
        n=n,
    )


def estimate_cate_level(
    table: Table,
    treated_matrix: np.ndarray,
    outcome: str,
    adjustments: Sequence[tuple[str, ...]],
    factorization_for=None,
) -> list[CateResult]:
    """Estimate one CATE per column for a whole lattice level.

    Columns may use different adjustment sets (``adjustments[j]`` belongs
    to column ``j``); columns sharing a set form one FWL group and ride the
    same GEMM pair.  The per-call fixed costs — boolean screening, the
    float64 conversion of the mask stack, the vectorised t-tail — are paid
    once for the level rather than once per group.

    Parameters
    ----------
    table:
        The conditioning subpopulation.
    treated_matrix:
        ``(n, m)`` boolean stack of treated masks.
    outcome:
        Continuous outcome attribute name.
    adjustments:
        Per-column adjustment tuples (``len == m``).
    factorization_for:
        Optional ``adjustment -> DesignFactorization`` callable (e.g. a
        cache lookup); invoked once per group that has at least one column
        passing the positivity screen.

    Returns
    -------
    list[CateResult]
        One result per column, each identical (to working precision, or
        bit-identical on fallback paths) to the scalar estimator's answer
        for that column alone.
    """
    if treated_matrix.dtype != np.bool_:
        treated_matrix = np.asarray(treated_matrix, dtype=bool)
    if treated_matrix.ndim != 2:
        raise EstimationError(
            f"treated_matrix must be 2-D (n, m), got shape {treated_matrix.shape}"
        )
    n, m = treated_matrix.shape
    if n != table.n_rows:
        raise EstimationError(
            f"treated_matrix rows {n} != table rows {table.n_rows}"
        )
    if len(adjustments) != m:
        raise EstimationError(
            f"{len(adjustments)} adjustment tuples for {m} columns"
        )
    if m == 0:
        return []

    n_treated_arr = treated_matrix.sum(axis=0)
    n_treated = n_treated_arr.tolist()
    results: list[CateResult | None] = [None] * m

    if 0 in n_treated or n in n_treated:
        for j in range(m):
            if n_treated[j] == 0 or n_treated[j] == n:
                results[j] = CateResult.invalid(
                    _POSITIVITY,
                    n=n,
                    n_treated=n_treated[j],
                    n_control=n - n_treated[j],
                    adjustment=tuple(adjustments[j]),
                )

    # First-seen grouping by adjustment set: deterministic given the level.
    groups: dict[tuple[str, ...], list[int]] = {}
    for j in range(m):
        if results[j] is None:
            groups.setdefault(tuple(adjustments[j]), []).append(j)
    if not groups:
        return results  # type: ignore[return-value]

    t_all: np.ndarray | None = None
    # Deferred t-tests: (column, estimate, stderr) plus parallel dof array.
    pending: list[tuple[int, float, float]] = []
    pending_dof: list[int] = []

    with obs_current().tracer.span(
        "estimation.level", kernel="columns", columns=m, groups=len(groups)
    ):
        for adjustment, cols in groups.items():
            factorization = _resolve(
                factorization_for(adjustment) if factorization_for else None,
                table,
                outcome,
                adjustment,
            )
            if factorization.degenerate:
                _count_scalar_fallbacks("columns", "collinear_design", len(cols))
                for j in cols:
                    results[j] = _SCALAR_FALLBACK.estimate(
                        table, treated_matrix[:, j], outcome, adjustment
                    )
                continue

            if t_all is None:
                t_all = treated_matrix.astype(np.float64)
            t_mat = t_all[:, cols] if len(cols) != m else t_all
            q = factorization.q
            y_res = factorization.y_res
            dof = n - factorization.rank - 1

            # The one GEMM pair of the group: project out col(W).
            t_res = t_mat - q @ (q.T @ t_mat)
            # Column-wise reductions (einsum stays off BLAS: per-column sums
            # are bit-identical regardless of batch width).
            tt = np.einsum("ij,ij->j", t_res, t_res)
            ty = np.einsum("ij,i->j", t_res, y_res)

            with np.errstate(divide="ignore", invalid="ignore"):
                estimates = ty / tt
                rss = factorization.y_res_sq - ty * ty / tt
                stderrs = np.sqrt((rss / max(dof, 1)) / tt)

            # ‖t‖² of a boolean mask is its treated count.
            fallback = tt <= RESIDUAL_TOL * n_treated_arr[cols].astype(np.float64)
            # A numerically perfect fit makes the FWL RSS identity cancel
            # catastrophically; defer to the scalar residual computation.
            fallback |= rss <= PERFECT_FIT_TOL * max(factorization.y_res_sq, 1.0)
            degenerate_fit = (dof <= 0) | ~np.isfinite(stderrs) | (stderrs == 0.0)

            if obs_current().enabled:
                _count_scalar_fallbacks(
                    "columns", "identity_guard", int(np.count_nonzero(fallback))
                )
                _count_degenerate_fits(
                    "columns", int(np.count_nonzero(degenerate_fit & ~fallback))
                )

            bad = (fallback | degenerate_fit).tolist()
            fallback_l = fallback.tolist()
            estimates_l = estimates.tolist()
            stderrs_l = stderrs.tolist()
            for pos, j in enumerate(cols):
                if bad[pos]:
                    if fallback_l[pos]:
                        # t numerically inside col(W) (the full design is rank
                        # deficient) or a perfect fit: the scalar path defines
                        # the answer bit-for-bit.
                        results[j] = _SCALAR_FALLBACK.estimate(
                            table, treated_matrix[:, j], outcome, adjustment
                        )
                    else:
                        results[j] = CateResult.invalid(
                            _DEGENERATE,
                            n=n,
                            n_treated=n_treated[j],
                            n_control=n - n_treated[j],
                            adjustment=adjustment,
                        )
                else:
                    pending.append((j, estimates_l[pos], stderrs_l[pos]))
                    pending_dof.append(dof)

    if pending:
        t_stats = np.array([est / se for _, est, se in pending])
        # scipy.special.stdtr is what stats.t.sf evaluates, sans the
        # distribution machinery: one vectorised call for the whole level,
        # bit-identical to the per-candidate spelling.
        p_values = (
            2.0 * special.stdtr(np.array(pending_dof, dtype=np.float64), -np.abs(t_stats))
        ).tolist()
        for (j, estimate, stderr), p_value in zip(pending, p_values):
            results[j] = CateResult(
                estimate=estimate,
                stderr=stderr,
                p_value=p_value,
                n=n,
                n_treated=n_treated[j],
                n_control=n - n_treated[j],
                adjustment=tuple(adjustments[j]),
            )
    return results  # type: ignore[return-value]


def estimate_level_rows(
    table: Table,
    treated_rows: np.ndarray,
    outcome: str,
    adjustments: Sequence[tuple[str, ...]],
    factorization_for=None,
    float_rows: np.ndarray | None = None,
    counts: np.ndarray | None = None,
) -> list[CateResult]:
    """Row-major fused spelling of :func:`estimate_cate_level`.

    The frontier batcher's level kernel.  Candidates arrive as an ``(m, n)``
    *row-major* stack — the layout packed bitsets unpack into for free
    (:func:`repro.mining.bitsets.unpack_rows`) — which makes every
    per-candidate reduction run over a contiguous row instead of a strided
    column: the two sums the FWL identities need are ~5x faster than the
    column-layout einsums of the reference kernel at mining shapes, and the
    projection GEMM pair is simply transposed (``T Q`` then ``- (T Q) Qᵀ``).

    Two further fixed costs are hoisted out relative to the reference:

    - ``float_rows`` lets the caller convert the boolean stack to float64
      **once per level** and share the row-sliced result across the three
      sub-population calls (overall / protected / non-protected) instead of
      re-converting each sub-population's stack;
    - ``counts`` lets the caller pass popcount-derived treated counts (the
      bitset kernel computes them anyway for support pruning), replacing
      the per-call boolean column sums.

    Exactness: the positivity screen, grouping, degenerate routing, the
    scalar ``ols()`` fallback (bit-identical by construction) and every
    elementwise identity are those of :func:`estimate_cate_level`; only the
    GEMM/reduction shapes differ, so non-degenerate estimates agree with
    the reference — and hence with the scalar path — to working precision
    (the same rtol-1e-9 differential contract).  Per-column bits remain a
    pure function of the batch content, never of how many *other* requests
    share an estimation round, which is what keeps frontier batching
    composition-independent (serial ≡ process at any chunking).
    """
    treated_rows = np.asarray(treated_rows, dtype=bool)
    if treated_rows.ndim != 2:
        raise EstimationError(
            f"treated_rows must be 2-D (m, n), got shape {treated_rows.shape}"
        )
    m, n = treated_rows.shape
    if n != table.n_rows:
        raise EstimationError(
            f"treated_rows columns {n} != table rows {table.n_rows}"
        )
    if len(adjustments) != m:
        raise EstimationError(
            f"{len(adjustments)} adjustment tuples for {m} rows"
        )
    if m == 0:
        return []

    if counts is None:
        counts = treated_rows.sum(axis=1)
    else:
        counts = np.asarray(counts)
    n_treated = [int(c) for c in counts]
    results: list[CateResult | None] = [None] * m

    for j in range(m):
        if n_treated[j] == 0 or n_treated[j] == n:
            results[j] = CateResult.invalid(
                _POSITIVITY,
                n=n,
                n_treated=n_treated[j],
                n_control=n - n_treated[j],
                adjustment=tuple(adjustments[j]),
            )

    # First-seen grouping by adjustment set: deterministic given the level.
    groups: dict[tuple[str, ...], list[int]] = {}
    for j in range(m):
        if results[j] is None:
            groups.setdefault(tuple(adjustments[j]), []).append(j)
    if not groups:
        return results  # type: ignore[return-value]

    if float_rows is None:
        float_rows = treated_rows.astype(np.float64)

    # Per-group work is the two GEMMs and the two row reductions only;
    # every elementwise identity below runs once per call on the stacked
    # per-column arrays (order: group-concatenation, deterministic).
    act_cols: list[int] = []
    act_adjustment: list[tuple[str, ...]] = []
    group_sizes: list[int] = []
    group_dof: list[int] = []
    group_ysq: list[float] = []
    tt_parts: list[np.ndarray] = []
    ty_parts: list[np.ndarray] = []

    with obs_current().tracer.span(
        "estimation.level", kernel="rows", columns=m, groups=len(groups)
    ):
        for adjustment, cols in groups.items():
            if factorization_for is not None:
                factorization = factorization_for(adjustment)
            else:
                factorization = build_rows_factorization(table, outcome, adjustment)
            if factorization.degenerate:
                _count_scalar_fallbacks("rows", "collinear_design", len(cols))
                for j in cols:
                    results[j] = _SCALAR_FALLBACK.estimate(
                        table, treated_rows[j], outcome, adjustment
                    )
                continue

            t_rows = float_rows[cols] if len(cols) != m else float_rows
            # The transposed GEMM pair: project out col(W) row-wise, then the
            # contiguous-row reductions (einsum stays off BLAS; each row's sum
            # is a pure function of that row).
            if isinstance(factorization, GramFactorization):
                projected = (t_rows @ factorization.w) @ factorization.gram_inv
                t_res = t_rows - projected @ factorization.w.T
            else:
                q = factorization.q
                t_res = t_rows - (t_rows @ q) @ q.T
            tt_parts.append(np.einsum("ij,ij->i", t_res, t_res))
            ty_parts.append(np.einsum("ij,j->i", t_res, factorization.y_res))
            act_cols.extend(cols)
            act_adjustment.append(adjustment)
            group_sizes.append(len(cols))
            group_dof.append(n - factorization.rank - 1)
            group_ysq.append(factorization.y_res_sq)

    if not act_cols:
        return results  # type: ignore[return-value]

    tt = np.concatenate(tt_parts) if len(tt_parts) > 1 else tt_parts[0]
    ty = np.concatenate(ty_parts) if len(ty_parts) > 1 else ty_parts[0]
    sizes = np.asarray(group_sizes)
    dof_col = np.repeat(np.asarray(group_dof, dtype=np.float64), sizes)
    ysq_col = np.repeat(np.asarray(group_ysq), sizes)
    act_counts = counts[act_cols].astype(np.float64)

    with np.errstate(divide="ignore", invalid="ignore"):
        estimates = ty / tt
        rss = ysq_col - ty * ty / tt
        stderrs = np.sqrt((rss / np.maximum(dof_col, 1.0)) / tt)
        # ‖t‖² of a boolean mask is its treated count; a numerically
        # perfect fit makes the FWL RSS identity cancel catastrophically —
        # both defer to the scalar path, which defines the answer
        # bit-for-bit.
        fallback = tt <= RESIDUAL_TOL * act_counts
        fallback |= rss <= PERFECT_FIT_TOL * np.maximum(ysq_col, 1.0)
        degenerate_fit = (dof_col <= 0) | ~np.isfinite(stderrs) | (stderrs == 0.0)
        t_stats = estimates / stderrs
        p_values = 2.0 * special.stdtr(dof_col, -np.abs(t_stats))

    if obs_current().enabled:
        _count_scalar_fallbacks(
            "rows", "identity_guard", int(np.count_nonzero(fallback))
        )
        _count_degenerate_fits(
            "rows", int(np.count_nonzero(degenerate_fit & ~fallback))
        )

    bad = fallback | degenerate_fit
    if bad.any():
        adj_col = np.repeat(np.arange(len(act_adjustment)), sizes)
        fallback_l = fallback.tolist()
        for pos in np.flatnonzero(bad):
            j = act_cols[pos]
            adjustment = act_adjustment[adj_col[pos]]
            if fallback_l[pos]:
                results[j] = _SCALAR_FALLBACK.estimate(
                    table, treated_rows[j], outcome, adjustment
                )
            else:
                results[j] = CateResult.invalid(
                    _DEGENERATE,
                    n=n,
                    n_treated=n_treated[j],
                    n_control=n - n_treated[j],
                    adjustment=adjustment,
                )
        bad_l = bad.tolist()
    else:
        bad_l = None

    est_l = estimates.tolist()
    se_l = stderrs.tolist()
    p_l = p_values.tolist()
    for pos, j in enumerate(act_cols):
        if bad_l is not None and bad_l[pos]:
            continue
        results[j] = CateResult(
            estimate=est_l[pos],
            stderr=se_l[pos],
            p_value=p_l[pos],
            n=n,
            n_treated=n_treated[j],
            n_control=n - n_treated[j],
            adjustment=tuple(adjustments[j]),
        )
    return results  # type: ignore[return-value]


class _MergedEntry:
    """One request's screening state inside :func:`estimate_rows_merged`."""

    __slots__ = ("table", "treated_rows", "float_rows", "counts", "n_treated", "results")

    def __init__(self, table, treated_rows, float_rows, counts, n_treated, results):
        self.table = table
        self.treated_rows = treated_rows
        self.float_rows = float_rows
        self.counts = counts
        self.n_treated = n_treated
        self.results = results


def estimate_rows_merged(tasks, outcome: str) -> None:
    """One merged estimation pass over a whole frontier round (throughput mode).

    ``tasks`` is a sequence of ``(request, factorization_for)`` pairs where
    ``request`` duck-types the frontier's sub-requests
    (:class:`repro.rules.utility._SubRequest`): ``table``, an ``(m, n)``
    boolean ``treated_rows`` stack, optional ``float_rows``/``counts``, a
    per-row ``effective`` adjustment list, and a ``results`` slot this
    function fills in place.  Rows from *different* requests that share a
    (table content, adjustment set) pair are concatenated into one wider
    GEMM pair — one projection per bucket instead of one per (context,
    sub-population, adjustment) — and the elementwise FWL tail plus the
    t-test run once over the entire round.

    Contract: merged batch widths change per-column GEMM rounding, so
    results are NOT bit-identical to :func:`estimate_level_rows` — this is
    the deliberate trade of ``FairCapConfig.throughput_mode``, certified by
    the 36-world scenario oracle (rtol bands + planted-ruleset recovery)
    instead of the differential suite.  Everything discrete is unchanged:
    the positivity screen, first-seen grouping, degenerate routing and the
    bit-exact scalar ``ols()`` fallback are those of the per-request
    kernel.
    """
    # Stage 1 — per-request screening and grouping, no estimation yet.
    entries: list[_MergedEntry] = []
    # (fingerprint, n, adjustment) -> [(entry index, cols), ...]; same
    # content + same adjustment => same factorization up to provenance
    # bits, so one bucket = one projection at the concatenated width.
    buckets: dict[tuple, list[tuple[int, list[int]]]] = {}
    providers: list = []
    for request, factorization_for in tasks:
        treated_rows = np.asarray(request.treated_rows, dtype=bool)
        m, n = treated_rows.shape
        table = request.table
        if n != table.n_rows:
            raise EstimationError(
                f"treated_rows columns {n} != table rows {table.n_rows}"
            )
        adjustments = request.effective
        counts = request.counts
        counts = treated_rows.sum(axis=1) if counts is None else np.asarray(counts)
        n_treated = [int(c) for c in counts]
        results: list[CateResult | None] = [None] * m
        for j in range(m):
            if n_treated[j] == 0 or n_treated[j] == n:
                results[j] = CateResult.invalid(
                    _POSITIVITY,
                    n=n,
                    n_treated=n_treated[j],
                    n_control=n - n_treated[j],
                    adjustment=tuple(adjustments[j]),
                )
        request.results = results
        groups: dict[tuple[str, ...], list[int]] = {}
        for j in range(m):
            if results[j] is None:
                groups.setdefault(tuple(adjustments[j]), []).append(j)
        if not groups:
            continue
        float_rows = request.float_rows
        if float_rows is None:
            float_rows = treated_rows.astype(np.float64)
        index = len(entries)
        entries.append(
            _MergedEntry(table, treated_rows, float_rows, counts, n_treated, results)
        )
        providers.append(factorization_for)
        fingerprint = table.fingerprint()
        for adjustment, cols in groups.items():
            buckets.setdefault((fingerprint, n, adjustment), []).append((index, cols))

    if not buckets:
        return

    # Stage 2 — one factorization + one GEMM pair per bucket, results
    # accumulated into flat per-column arrays for the single shared tail.
    act: list[tuple[int, int]] = []  # (entry index, column) per tail slot
    act_adjustment: list[tuple[str, ...]] = []  # per bucket
    bucket_widths: list[int] = []
    bucket_dof: list[float] = []
    bucket_ysq: list[float] = []
    tt_parts: list[np.ndarray] = []
    ty_parts: list[np.ndarray] = []
    count_parts: list[np.ndarray] = []

    with obs_current().tracer.span(
        "estimation.round",
        kernel="merged",
        requests=len(tasks),
        buckets=len(buckets),
    ):
        for (_, n, adjustment), members in buckets.items():
            first_index = members[0][0]
            factorization = providers[first_index](adjustment)
            if factorization.degenerate:
                total = sum(len(cols) for _, cols in members)
                _count_scalar_fallbacks("merged", "collinear_design", total)
                for index, cols in members:
                    entry = entries[index]
                    for j in cols:
                        entry.results[j] = _SCALAR_FALLBACK.estimate(
                            entry.table, entry.treated_rows[j], outcome, adjustment
                        )
                continue

            parts = []
            for index, cols in members:
                float_rows = entries[index].float_rows
                parts.append(
                    float_rows[cols] if len(cols) != float_rows.shape[0] else float_rows
                )
            t_rows = parts[0] if len(parts) == 1 else np.vstack(parts)
            if isinstance(factorization, GramFactorization):
                projected = (t_rows @ factorization.w) @ factorization.gram_inv
                t_res = t_rows - projected @ factorization.w.T
            else:
                q = factorization.q
                t_res = t_rows - (t_rows @ q) @ q.T
            tt_parts.append(np.einsum("ij,ij->i", t_res, t_res))
            ty_parts.append(np.einsum("ij,j->i", t_res, factorization.y_res))
            for index, cols in members:
                act.extend((index, j) for j in cols)
                count_parts.append(entries[index].counts[cols])
            act_adjustment.append(adjustment)
            bucket_widths.append(sum(len(cols) for _, cols in members))
            bucket_dof.append(float(n - factorization.rank - 1))
            bucket_ysq.append(factorization.y_res_sq)

    if not act:
        return

    telemetry = obs_current()
    if telemetry.enabled:
        telemetry.registry.inc("estimation.merged_columns", len(act))

    tt = np.concatenate(tt_parts) if len(tt_parts) > 1 else tt_parts[0]
    ty = np.concatenate(ty_parts) if len(ty_parts) > 1 else ty_parts[0]
    sizes = np.asarray(bucket_widths)
    dof_col = np.repeat(np.asarray(bucket_dof), sizes)
    ysq_col = np.repeat(np.asarray(bucket_ysq), sizes)
    act_counts = np.concatenate(count_parts).astype(np.float64)

    with np.errstate(divide="ignore", invalid="ignore"):
        estimates = ty / tt
        rss = ysq_col - ty * ty / tt
        stderrs = np.sqrt((rss / np.maximum(dof_col, 1.0)) / tt)
        fallback = tt <= RESIDUAL_TOL * act_counts
        fallback |= rss <= PERFECT_FIT_TOL * np.maximum(ysq_col, 1.0)
        degenerate_fit = (dof_col <= 0) | ~np.isfinite(stderrs) | (stderrs == 0.0)
        t_stats = estimates / stderrs
        p_values = 2.0 * special.stdtr(dof_col, -np.abs(t_stats))

    if telemetry.enabled:
        _count_scalar_fallbacks(
            "merged", "identity_guard", int(np.count_nonzero(fallback))
        )
        _count_degenerate_fits(
            "merged", int(np.count_nonzero(degenerate_fit & ~fallback))
        )

    bad = fallback | degenerate_fit
    adj_col = np.repeat(np.arange(len(act_adjustment)), sizes)
    est_l = estimates.tolist()
    se_l = stderrs.tolist()
    p_l = p_values.tolist()
    bad_l = bad.tolist()
    fallback_l = fallback.tolist()
    for pos, (index, j) in enumerate(act):
        entry = entries[index]
        adjustment = act_adjustment[adj_col[pos]]
        n = entry.table.n_rows
        if bad_l[pos]:
            if fallback_l[pos]:
                entry.results[j] = _SCALAR_FALLBACK.estimate(
                    entry.table, entry.treated_rows[j], outcome, adjustment
                )
            else:
                entry.results[j] = CateResult.invalid(
                    _DEGENERATE,
                    n=n,
                    n_treated=entry.n_treated[j],
                    n_control=n - entry.n_treated[j],
                    adjustment=adjustment,
                )
        else:
            entry.results[j] = CateResult(
                estimate=est_l[pos],
                stderr=se_l[pos],
                p_value=p_l[pos],
                n=n,
                n_treated=entry.n_treated[j],
                n_control=n - entry.n_treated[j],
                adjustment=adjustment,
            )


def estimate_cate_batch(
    table: Table,
    treated_matrix: np.ndarray,
    outcome: str,
    adjustment: tuple[str, ...] = (),
    factorization=None,
) -> list[CateResult]:
    """Estimate one CATE per column of ``treated_matrix`` in one GEMM pair.

    Single-adjustment-set spelling of :func:`estimate_cate_level` (the
    whole stack shares ``adjustment``).

    Parameters
    ----------
    table:
        The conditioning subpopulation (rows already restricted).
    treated_matrix:
        ``(n, m)`` boolean array; column ``j`` is candidate ``j``'s treated
        mask.  ``m = 0`` returns an empty list.
    outcome:
        Continuous outcome attribute name.
    adjustment:
        Confounder attributes (a backdoor set).
    factorization:
        Optional pre-built :func:`build_factorization` result for
        ``(table, outcome, adjustment)`` — or a zero-argument callable
        producing one, invoked only if some column survives the positivity
        screen.  Built on the fly when omitted.
    """
    treated_matrix = np.asarray(treated_matrix, dtype=bool)
    if treated_matrix.ndim != 2:
        raise EstimationError(
            f"treated_matrix must be 2-D (n, m), got shape {treated_matrix.shape}"
        )
    m = treated_matrix.shape[1]
    adjustment = tuple(adjustment)
    provider = None
    if factorization is not None:
        provider = lambda _adj: factorization  # noqa: E731 - tiny adaptor
    return estimate_cate_level(
        table,
        treated_matrix,
        outcome,
        [adjustment] * m,
        factorization_for=provider,
    )
