"""Batched Frisch-Waugh-Lovell CATE estimation: one GEMM per lattice level.

Step 2 of FairCap evaluates hundreds of intervention candidates against the
*same* (sub-table, adjustment set, outcome) triple — within one lattice
level only the treated column of the OLS design differs between candidates.
The scalar path (:class:`~repro.causal.estimators.LinearAdjustmentEstimator`)
nevertheless pays a full ``lstsq`` *and* a dense covariance factorization per
candidate, rebuilding identical one-hot adjustment blocks every time.

This module factors the shared work out once and amortises it over the whole
level via the Frisch-Waugh-Lovell theorem.  Write the design as
``X = [t, W]`` with ``W = [1, Z-block]``; residualise both the treated
indicator and the outcome against ``col(W)``::

    t̃ = t - Q Qᵀ t          ỹ = y - Q Qᵀ y

where ``Q`` is a thin orthonormal basis of ``col(W)``.  Then the OLS
coefficient of ``t`` is ``β = (t̃·ỹ) / (t̃·t̃)``, its sampling variance is
``s² / (t̃·t̃)``, and the residual sum of squares of the *full* regression is
``ỹ·ỹ - (t̃·ỹ)²/(t̃·t̃)``.  The identity for the variance holds even when
``W`` is rank deficient (absent one-hot categories, collinear adjustment
columns): the ``t``-coefficient of the minimum-norm least-squares solution is
the unique functional ``y ↦ t̃·y / t̃·t̃`` whenever ``t ∉ col(W)``, so the
``t`` row of ``X⁺`` is ``t̃ᵀ/(t̃·t̃)`` and ``(XᵀX)⁺_tt = 1/(t̃·t̃)`` — exactly
what the scalar path reads off ``pinv``.

:class:`DesignFactorization` captures ``Q``, the rank of ``W``, and the
residualised outcome — computed once per (table, adjustment, outcome) and
cacheable (see :class:`~repro.parallel.cache.EstimationCache`).
:func:`estimate_cate_batch` residualises an ``(n, m)`` stack of treated
masks in one GEMM pair and reads off all ``m`` estimates, standard errors
and t-test p-values vectorised; :func:`estimate_cate_level` drives a whole
lattice level — several adjustment groups over one treated-mask stack —
through that machinery with the per-call fixed costs (dtype conversion,
positivity screening, the t-tail evaluation) paid once.

Exactness contract
------------------
Results agree with the scalar path to floating-point working precision
(differentially tested at rtol 1e-9).  Candidates the FWL identities do not
cover bit-identically fall back to the scalar ``ols()`` path per column:

- ``t`` numerically inside ``col(W)`` (the full design is rank deficient);
- an ill-conditioned ``W`` whose numerical rank is ambiguous under the
  ``lstsq`` cutoff rule;
- a numerically perfect fit (RSS at rounding level), where the FWL RSS
  identity loses relative accuracy.

Per-column determinism: each column's estimate is a pure function of that
column, the factorization, and the *batch shape* — BLAS GEMM kernels round
identically under column permutation at a fixed width, but not across
different widths.  Callers that must be bit-reproducible across executors
therefore key caches by the whole batch (see ``EstimationCache.level_key``),
never by single columns computed inside different batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import linalg as scipy_linalg
from scipy import special
from scipy.linalg import lapack

from repro.causal.estimators import (
    CateResult,
    LinearAdjustmentEstimator,
    _outcome_vector,
)
from repro.causal.linalg import one_hot
from repro.tabular.column import CategoricalColumn
from repro.tabular.table import Table
from repro.utils.errors import EstimationError

# Guard thresholds for the scalar fallback (see module docstring).  The
# rank cutoff mirrors numpy's lstsq rcond rule; CONDITION_MARGIN widens it
# so designs whose rank determination is ambiguous between the W-SVD here
# and the X-SVD inside lstsq are routed to the scalar path instead of
# risking an off-by-one dof.  RCOND_FAST_PATH is the dtrcon estimate above
# which a design is certified clean without computing singular values.
CONDITION_MARGIN = 1e3
RCOND_FAST_PATH = 1e-7
RESIDUAL_TOL = 1e-10  # ‖t̃‖²/‖t‖² below this -> t ∈ col(W) numerically
PERFECT_FIT_TOL = 1e-12  # RSS/‖ỹ‖² below this -> scalar path

_SCALAR_FALLBACK = LinearAdjustmentEstimator()

_POSITIVITY = "positivity violated: empty treated or control group"
_DEGENERATE = "degenerate fit: no residual degrees of freedom"


@dataclass(frozen=True)
class DesignFactorization:
    """Orthonormal factorization of the shared design block ``W = [1, Z]``.

    Attributes
    ----------
    q:
        ``(n, r)`` orthonormal basis of ``col(W)``.
    rank:
        Numerical rank ``r`` of ``W`` under the ``lstsq`` cutoff rule.
    y_res:
        The outcome residualised against ``col(W)`` (``ỹ``).
    y_res_sq:
        Cached ``ỹ·ỹ``.
    n:
        Row count of the underlying table.
    degenerate:
        True when ``W`` is rank deficient beyond exactly-zero columns or
        ill-conditioned near the rank cutoff; every estimate against a
        degenerate factorization takes the scalar fallback path.
    """

    q: np.ndarray
    rank: int
    y_res: np.ndarray
    y_res_sq: float
    n: int
    degenerate: bool


def _attribute_block(table: Table, name: str) -> np.ndarray:
    """Encoded design columns of one adjustment attribute, memoised per table.

    Same encoding as :func:`repro.causal.estimators._encode_adjustment`:
    categoricals one-hot with the first category dropped, continuous as-is.
    The same attribute appears in many adjustment sets of one sub-table
    (every treatment whose backdoor set contains it), so the block rides on
    the immutable table like its fingerprint does.
    """
    cache = table.__dict__.setdefault("_design_block_cache", {})
    block = cache.get(name)
    if block is None:
        column = table.column(name)
        if isinstance(column, CategoricalColumn):
            block = one_hot(column.codes, len(column.categories))
        else:
            block = column.decode().reshape(-1, 1).astype(np.float64, copy=False)
        cache[name] = block
    return block


def _build_design_block(table: Table, adjustment: tuple[str, ...]) -> np.ndarray:
    """Assemble ``W = [1, Z-block]`` from the per-attribute block cache."""
    n = table.n_rows
    blocks = [_attribute_block(table, name) for name in adjustment]
    total = 1 + sum(block.shape[1] for block in blocks)
    w = np.empty((n, total), dtype=np.float64)
    w[:, 0] = 1.0
    offset = 1
    for block in blocks:
        width = block.shape[1]
        w[:, offset : offset + width] = block
        offset += width
    return w


def _rank_from_singular_values(
    r_factor: np.ndarray, shape: tuple[int, int]
) -> tuple[int, bool]:
    """(rank, shaky) from the singular values of the triangular factor."""
    s = np.linalg.svd(r_factor, compute_uv=False)
    cutoff = max(shape) * np.finfo(np.float64).eps * s[0]
    rank = int((s > cutoff).sum())
    shaky = bool(((s > cutoff) & (s < CONDITION_MARGIN * cutoff)).any())
    return rank, shaky


def build_factorization(
    table: Table, outcome: str, adjustment: tuple[str, ...] = ()
) -> DesignFactorization:
    """Factorize ``[1, Z-block]`` for one (table, adjustment, outcome) triple.

    One thin QR per triple; every lattice level sharing the triple reuses
    the result.  Rank and conditioning are certified on the small
    triangular factor: a LAPACK ``dtrcon`` estimate fast-paths the
    well-conditioned common case, and only suspicious designs pay an SVD of
    ``R`` (whose singular values equal ``W``'s, so the rank cutoff matches
    ``lstsq``'s rule).  Exactly-zero adjustment columns (one-hot categories
    absent from the sub-table) deflate cleanly — they contribute nothing to
    the basis and the rank, matching ``lstsq``'s treatment of them in the
    scalar path.
    """
    y = _outcome_vector(table, outcome)
    n = table.n_rows
    if n == 0:
        raise EstimationError("cannot factorize an empty design")
    w = _build_design_block(table, adjustment)
    n_cols = w.shape[1]

    rank = n_cols
    degenerate = False
    if n_cols > n:  # wide design: trivially deficient
        degenerate = True
        q = np.empty((n, 0), dtype=np.float64)  # unused on the scalar path
    else:
        # Raw LAPACK spelling of scipy.linalg.qr(mode="economic"): same
        # bits, none of the wrapper overhead — this runs ~1.4k times per
        # German Table-4 mining run.
        lwork = int(lapack.dgeqrf_lwork(n, n_cols)[0])
        qr_t, tau, _, info = lapack.dgeqrf(w, lwork=lwork)
        if info != 0:  # pragma: no cover - LAPACK input errors
            raise EstimationError(f"dgeqrf failed with info={info}")
        r_factor = qr_t[:n_cols, :n_cols]  # sub-diagonal junk is ignored
        diag = np.abs(r_factor.diagonal())
        if diag.size and diag.min() == 0.0:
            degenerate = True  # exactly singular; maybe just zero columns
        else:
            rcond = lapack.dtrcon(r_factor, norm="1", uplo="U", diag="N")[0]
            if rcond < RCOND_FAST_PATH:
                rank, shaky = _rank_from_singular_values(
                    np.triu(r_factor), w.shape
                )
                degenerate = rank < n_cols or shaky
        q, _, info = lapack.dorgqr(qr_t, tau, lwork=lwork)
        if info != 0:  # pragma: no cover - LAPACK input errors
            raise EstimationError(f"dorgqr failed with info={info}")
    if degenerate:
        # Zero columns (absent one-hot categories) deflate cleanly: drop
        # them and re-factorize; any other deficiency keeps the
        # factorization degenerate and takes the scalar fallback per
        # column.
        nonzero = np.abs(w).max(axis=0) > 0.0
        if not nonzero.all():
            reduced = np.ascontiguousarray(w[:, nonzero])
            if reduced.shape[1] <= n:
                q2, r2 = scipy_linalg.qr(
                    reduced, mode="economic", overwrite_a=True, check_finite=False
                )
                rank, shaky = _rank_from_singular_values(r2, reduced.shape)
                if rank == reduced.shape[1] and not shaky:
                    q = q2
                    degenerate = False

    if degenerate:
        # Basis unused on the degenerate path; keep fields consistent.
        rank = min(rank, q.shape[1])
    q = q[:, :rank] if q.shape[1] != rank else q
    # C-contiguous basis: LAPACK hands back Fortran order, under which the
    # projection GEMM's per-column rounding depends on the column position;
    # row-major Q keeps batch results bit-invariant under column
    # permutation (the property the differential suite pins down).
    q = np.ascontiguousarray(q)
    y_res = y - q @ (q.T @ y)
    return DesignFactorization(
        q=q,
        rank=rank,
        y_res=y_res,
        y_res_sq=float(y_res @ y_res),
        n=n,
        degenerate=degenerate,
    )


def _resolve(factorization, table, outcome, adjustment) -> DesignFactorization:
    if factorization is None:
        return build_factorization(table, outcome, adjustment)
    if callable(factorization):
        return factorization()
    return factorization


def estimate_cate_level(
    table: Table,
    treated_matrix: np.ndarray,
    outcome: str,
    adjustments: Sequence[tuple[str, ...]],
    factorization_for=None,
) -> list[CateResult]:
    """Estimate one CATE per column for a whole lattice level.

    Columns may use different adjustment sets (``adjustments[j]`` belongs
    to column ``j``); columns sharing a set form one FWL group and ride the
    same GEMM pair.  The per-call fixed costs — boolean screening, the
    float64 conversion of the mask stack, the vectorised t-tail — are paid
    once for the level rather than once per group.

    Parameters
    ----------
    table:
        The conditioning subpopulation.
    treated_matrix:
        ``(n, m)`` boolean stack of treated masks.
    outcome:
        Continuous outcome attribute name.
    adjustments:
        Per-column adjustment tuples (``len == m``).
    factorization_for:
        Optional ``adjustment -> DesignFactorization`` callable (e.g. a
        cache lookup); invoked once per group that has at least one column
        passing the positivity screen.

    Returns
    -------
    list[CateResult]
        One result per column, each identical (to working precision, or
        bit-identical on fallback paths) to the scalar estimator's answer
        for that column alone.
    """
    if treated_matrix.dtype != np.bool_:
        treated_matrix = np.asarray(treated_matrix, dtype=bool)
    if treated_matrix.ndim != 2:
        raise EstimationError(
            f"treated_matrix must be 2-D (n, m), got shape {treated_matrix.shape}"
        )
    n, m = treated_matrix.shape
    if n != table.n_rows:
        raise EstimationError(
            f"treated_matrix rows {n} != table rows {table.n_rows}"
        )
    if len(adjustments) != m:
        raise EstimationError(
            f"{len(adjustments)} adjustment tuples for {m} columns"
        )
    if m == 0:
        return []

    n_treated_arr = treated_matrix.sum(axis=0)
    n_treated = n_treated_arr.tolist()
    results: list[CateResult | None] = [None] * m

    if 0 in n_treated or n in n_treated:
        for j in range(m):
            if n_treated[j] == 0 or n_treated[j] == n:
                results[j] = CateResult.invalid(
                    _POSITIVITY,
                    n=n,
                    n_treated=n_treated[j],
                    n_control=n - n_treated[j],
                    adjustment=tuple(adjustments[j]),
                )

    # First-seen grouping by adjustment set: deterministic given the level.
    groups: dict[tuple[str, ...], list[int]] = {}
    for j in range(m):
        if results[j] is None:
            groups.setdefault(tuple(adjustments[j]), []).append(j)
    if not groups:
        return results  # type: ignore[return-value]

    t_all: np.ndarray | None = None
    # Deferred t-tests: (column, estimate, stderr) plus parallel dof array.
    pending: list[tuple[int, float, float]] = []
    pending_dof: list[int] = []

    for adjustment, cols in groups.items():
        factorization = _resolve(
            factorization_for(adjustment) if factorization_for else None,
            table,
            outcome,
            adjustment,
        )
        if factorization.degenerate:
            for j in cols:
                results[j] = _SCALAR_FALLBACK.estimate(
                    table, treated_matrix[:, j], outcome, adjustment
                )
            continue

        if t_all is None:
            t_all = treated_matrix.astype(np.float64)
        t_mat = t_all[:, cols] if len(cols) != m else t_all
        q = factorization.q
        y_res = factorization.y_res
        dof = n - factorization.rank - 1

        # The one GEMM pair of the group: project out col(W).
        t_res = t_mat - q @ (q.T @ t_mat)
        # Column-wise reductions (einsum stays off BLAS: per-column sums
        # are bit-identical regardless of batch width).
        tt = np.einsum("ij,ij->j", t_res, t_res)
        ty = np.einsum("ij,i->j", t_res, y_res)

        with np.errstate(divide="ignore", invalid="ignore"):
            estimates = ty / tt
            rss = factorization.y_res_sq - ty * ty / tt
            stderrs = np.sqrt((rss / max(dof, 1)) / tt)

        # ‖t‖² of a boolean mask is its treated count.
        fallback = tt <= RESIDUAL_TOL * n_treated_arr[cols].astype(np.float64)
        # A numerically perfect fit makes the FWL RSS identity cancel
        # catastrophically; defer to the scalar residual computation.
        fallback |= rss <= PERFECT_FIT_TOL * max(factorization.y_res_sq, 1.0)
        degenerate_fit = (dof <= 0) | ~np.isfinite(stderrs) | (stderrs == 0.0)

        bad = (fallback | degenerate_fit).tolist()
        fallback_l = fallback.tolist()
        estimates_l = estimates.tolist()
        stderrs_l = stderrs.tolist()
        for pos, j in enumerate(cols):
            if bad[pos]:
                if fallback_l[pos]:
                    # t numerically inside col(W) (the full design is rank
                    # deficient) or a perfect fit: the scalar path defines
                    # the answer bit-for-bit.
                    results[j] = _SCALAR_FALLBACK.estimate(
                        table, treated_matrix[:, j], outcome, adjustment
                    )
                else:
                    results[j] = CateResult.invalid(
                        _DEGENERATE,
                        n=n,
                        n_treated=n_treated[j],
                        n_control=n - n_treated[j],
                        adjustment=adjustment,
                    )
            else:
                pending.append((j, estimates_l[pos], stderrs_l[pos]))
                pending_dof.append(dof)

    if pending:
        t_stats = np.array([est / se for _, est, se in pending])
        # scipy.special.stdtr is what stats.t.sf evaluates, sans the
        # distribution machinery: one vectorised call for the whole level,
        # bit-identical to the per-candidate spelling.
        p_values = (
            2.0 * special.stdtr(np.array(pending_dof, dtype=np.float64), -np.abs(t_stats))
        ).tolist()
        for (j, estimate, stderr), p_value in zip(pending, p_values):
            results[j] = CateResult(
                estimate=estimate,
                stderr=stderr,
                p_value=p_value,
                n=n,
                n_treated=n_treated[j],
                n_control=n - n_treated[j],
                adjustment=tuple(adjustments[j]),
            )
    return results  # type: ignore[return-value]


def estimate_cate_batch(
    table: Table,
    treated_matrix: np.ndarray,
    outcome: str,
    adjustment: tuple[str, ...] = (),
    factorization=None,
) -> list[CateResult]:
    """Estimate one CATE per column of ``treated_matrix`` in one GEMM pair.

    Single-adjustment-set spelling of :func:`estimate_cate_level` (the
    whole stack shares ``adjustment``).

    Parameters
    ----------
    table:
        The conditioning subpopulation (rows already restricted).
    treated_matrix:
        ``(n, m)`` boolean array; column ``j`` is candidate ``j``'s treated
        mask.  ``m = 0`` returns an empty list.
    outcome:
        Continuous outcome attribute name.
    adjustment:
        Confounder attributes (a backdoor set).
    factorization:
        Optional pre-built :func:`build_factorization` result for
        ``(table, outcome, adjustment)`` — or a zero-argument callable
        producing one, invoked only if some column survives the positivity
        screen.  Built on the fly when omitted.
    """
    treated_matrix = np.asarray(treated_matrix, dtype=bool)
    if treated_matrix.ndim != 2:
        raise EstimationError(
            f"treated_matrix must be 2-D (n, m), got shape {treated_matrix.shape}"
        )
    m = treated_matrix.shape[1]
    adjustment = tuple(adjustment)
    provider = None
    if factorization is not None:
        provider = lambda _adj: factorization  # noqa: E731 - tiny adaptor
    return estimate_cate_level(
        table,
        treated_matrix,
        outcome,
        [adjustment] * m,
        factorization_for=provider,
    )
