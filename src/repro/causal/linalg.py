"""Ordinary least squares with coefficient standard errors.

A tiny OLS used by the linear-adjustment CATE estimator.  Coefficients come
from numpy's ``lstsq``; coefficient variances come from a Cholesky
factorization of ``XᵀX`` on full-rank designs, falling back to ``pinv`` so
rank-deficient design matrices (e.g. a one-hot block whose category never
appears among the treated) degrade gracefully instead of crashing.  The
historical dense-``pinv`` covariance stays available behind
``full_covariance=True``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import linalg as scipy_linalg

from repro.utils.errors import EstimationError


@dataclass(frozen=True)
class OLSResult:
    """Fit results of ``y ~ X``.

    Attributes
    ----------
    coefficients:
        Estimated coefficient vector (length = columns of X).
    stderr:
        Standard error per coefficient (NaN where the design is deficient).
    residual_variance:
        Unbiased residual variance estimate ``s²`` (NaN when dof <= 0).
    dof:
        Residual degrees of freedom ``n - rank(X)``.
    rank:
        Numerical rank of the design matrix.
    """

    coefficients: np.ndarray
    stderr: np.ndarray
    residual_variance: float
    dof: int
    rank: int


def ols(
    design: np.ndarray, response: np.ndarray, full_covariance: bool = False
) -> OLSResult:
    """Fit ``response ~ design`` by least squares.

    Parameters
    ----------
    design:
        ``(n, p)`` design matrix (caller adds the intercept column).
    response:
        ``(n,)`` response vector.
    full_covariance:
        Opt-in to the dense ``pinv(XᵀX)``-based covariance (the historical
        behaviour).  By default the coefficient variances are derived from a
        Cholesky factorization of ``XᵀX`` — same values to working
        precision on full-rank designs, without the SVD a pseudo-inverse
        costs.  Rank-deficient designs silently take the ``pinv`` route
        either way, so degenerate fits are unchanged.

    Raises
    ------
    EstimationError
        On shape mismatch or an empty design.
    """
    design = np.asarray(design, dtype=np.float64)
    response = np.asarray(response, dtype=np.float64)
    if design.ndim != 2:
        raise EstimationError(f"design must be 2-D, got shape {design.shape}")
    n, p = design.shape
    if response.shape != (n,):
        raise EstimationError(
            f"response shape {response.shape} incompatible with design ({n}, {p})"
        )
    if n == 0 or p == 0:
        raise EstimationError("cannot fit OLS on an empty design")

    coefficients, _, rank, _ = np.linalg.lstsq(design, response, rcond=None)
    residuals = response - design @ coefficients
    dof = n - rank
    if dof > 0:
        residual_variance = float(residuals @ residuals) / dof
    else:
        residual_variance = float("nan")

    if np.isnan(residual_variance):
        stderr = np.full(p, np.nan)
    else:
        # Covariance of beta-hat: s^2 (X'X)^+.  The default route factors
        # X'X = L L' and reads the inverse diagonal off the rows of L^-1;
        # pinv (an SVD) is reserved for rank-deficient designs and the
        # opt-in full_covariance spelling.
        xtx = design.T @ design
        inv_diag: np.ndarray | None = None
        if not full_covariance and rank == p:
            try:
                l_factor = scipy_linalg.cholesky(xtx, lower=True)
                l_inv = scipy_linalg.solve_triangular(
                    l_factor, np.eye(p), lower=True
                )
                inv_diag = np.einsum("ij,ij->j", l_inv, l_inv)
            except scipy_linalg.LinAlgError:
                inv_diag = None  # numerically not PD: fall through to pinv
        if inv_diag is None:
            inv_diag = np.diag(np.linalg.pinv(xtx))
        variances = residual_variance * inv_diag
        stderr = np.sqrt(np.clip(variances, 0.0, None))
    return OLSResult(
        coefficients=coefficients,
        stderr=stderr,
        residual_variance=residual_variance,
        dof=int(dof),
        rank=int(rank),
    )


def one_hot(codes: np.ndarray, n_categories: int, drop_first: bool = True) -> np.ndarray:
    """One-hot encode integer ``codes`` into an ``(n, k)`` float matrix.

    With ``drop_first`` the first category becomes the reference level, which
    keeps the encoded block full-rank next to an intercept column.
    """
    codes = np.asarray(codes)
    n = codes.shape[0]
    if n_categories <= 0:
        raise EstimationError("n_categories must be positive")
    matrix = np.zeros((n, n_categories), dtype=np.float64)
    if n:
        matrix[np.arange(n), codes] = 1.0
    if drop_first:
        return matrix[:, 1:]
    return matrix
