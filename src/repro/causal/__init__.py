"""Causal-inference substrate (S3-S6).

Implements the slice of Pearl's graphical-model machinery that FairCap needs
(the paper delegates this to the DoWhy library):

- :mod:`~repro.causal.dag` — causal DAGs over attribute names,
- :mod:`~repro.causal.dseparation` — d-separation via moralized ancestral
  graphs,
- :mod:`~repro.causal.backdoor` — backdoor adjustment-set selection,
- :mod:`~repro.causal.estimators` — CATE estimation by linear adjustment and
  by exact stratification, with significance tests,
- :mod:`~repro.causal.batch` — the batched Frisch-Waugh-Lovell engine:
  one design factorization + one GEMM per lattice level instead of one OLS
  per candidate,
- :mod:`~repro.causal.independence` — conditional-independence tests,
- :mod:`~repro.causal.discovery` — the PC causal-discovery algorithm
  (the "PC DAG" row of Table 6),
- :mod:`~repro.causal.dagbuilders` — the synthetic 1-layer / 2-layer DAGs of
  Table 6,
- :mod:`~repro.causal.scm` — structural causal models used to generate the
  synthetic datasets with known ground-truth effects.
"""

from repro.causal.dag import CausalDAG
from repro.causal.dseparation import d_separated
from repro.causal.backdoor import (
    backdoor_adjustment_set,
    is_valid_backdoor_set,
    minimal_backdoor_set,
)
from repro.causal.batch import (
    DesignFactorization,
    build_factorization,
    estimate_cate_batch,
    estimate_cate_level,
)
from repro.causal.estimators import (
    CateResult,
    LinearAdjustmentEstimator,
    StratifiedEstimator,
    estimate_cate,
)
from repro.causal.discovery import pc_dag, pc_skeleton
from repro.causal.dagbuilders import (
    one_layer_independent_dag,
    two_layer_dag,
    two_layer_mutable_dag,
)
from repro.causal.scm import SCMNode, StructuralCausalModel

__all__ = [
    "CausalDAG",
    "d_separated",
    "backdoor_adjustment_set",
    "is_valid_backdoor_set",
    "minimal_backdoor_set",
    "CateResult",
    "DesignFactorization",
    "LinearAdjustmentEstimator",
    "StratifiedEstimator",
    "build_factorization",
    "estimate_cate",
    "estimate_cate_batch",
    "estimate_cate_level",
    "pc_dag",
    "pc_skeleton",
    "one_layer_independent_dag",
    "two_layer_dag",
    "two_layer_mutable_dag",
    "SCMNode",
    "StructuralCausalModel",
]
