"""d-separation via the moralized ancestral graph (Lauritzen et al. 1990).

Given disjoint node sets ``X``, ``Y``, ``Z``:

1. restrict the DAG to the ancestral closure of ``X ∪ Y ∪ Z``;
2. *moralize*: connect every pair of parents that share a child, then drop
   edge directions;
3. delete ``Z``; ``X`` and ``Y`` are d-separated given ``Z`` iff no undirected
   path connects a node of ``X`` to a node of ``Y``.

This classical reduction is easy to verify and has no dependency on the
networkx version in use.
"""

from __future__ import annotations

from itertools import combinations
from typing import TYPE_CHECKING, Iterable

import networkx as nx

from repro.utils.errors import SchemaError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.causal.dag import CausalDAG


def d_separated(
    dag: "CausalDAG",
    xs: Iterable[str],
    ys: Iterable[str],
    zs: Iterable[str] = (),
) -> bool:
    """Whether ``xs`` and ``ys`` are d-separated by ``zs`` in ``dag``.

    Parameters
    ----------
    dag:
        The causal DAG.
    xs, ys:
        Non-empty, disjoint node sets.
    zs:
        Conditioning set (may overlap neither ``xs`` nor ``ys``).

    Returns
    -------
    bool
        ``True`` iff every path between ``xs`` and ``ys`` is blocked by
        ``zs``.
    """
    x_set, y_set, z_set = set(xs), set(ys), set(zs)
    if not x_set or not y_set:
        raise SchemaError("d-separation requires non-empty X and Y sets")
    if x_set & y_set:
        raise SchemaError(f"X and Y overlap: {sorted(x_set & y_set)}")
    if (x_set | y_set) & z_set:
        raise SchemaError("conditioning set Z must be disjoint from X and Y")
    graph = dag.networkx_view()  # read-only: never mutated below
    for node in x_set | y_set | z_set:
        if node not in graph:
            raise SchemaError(f"node {node!r} not in causal DAG")

    # Step 1: ancestral closure of X ∪ Y ∪ Z.
    relevant = set(x_set | y_set | z_set)
    for node in list(relevant):
        relevant |= nx.ancestors(graph, node)
    sub = graph.subgraph(relevant)

    # Step 2: moralize.
    moral = nx.Graph()
    moral.add_nodes_from(sub.nodes())
    moral.add_edges_from(sub.edges())
    for child in sub.nodes():
        for p1, p2 in combinations(sorted(sub.predecessors(child)), 2):
            moral.add_edge(p1, p2)

    # Step 3: remove Z and look for connectivity.
    moral.remove_nodes_from(z_set)
    seen = set()
    frontier = [n for n in x_set if n in moral]
    while frontier:
        node = frontier.pop()
        if node in seen:
            continue
        seen.add(node)
        if node in y_set:
            return False
        frontier.extend(nbr for nbr in moral.neighbors(node) if nbr not in seen)
    return True
