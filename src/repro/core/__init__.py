"""The FairCap algorithm — the paper's primary contribution (S13, S14)."""

from repro.core.config import FairCapConfig
from repro.core.variants import (
    ProblemVariant,
    all_variants,
    canonical_variants,
    unconstrained,
)
from repro.core.faircap import FairCap, FairCapResult, run_faircap
from repro.core.greedy import GreedyResult, GreedyStep, greedy_select
from repro.core.grouping import mine_grouping_patterns
from repro.core.intervention import (
    InterventionMiningResult,
    intervention_items,
    mine_intervention,
    mine_interventions_for_groups,
)
from repro.core.bruteforce import BruteForceResult, brute_force_select
from repro.core.costs import (
    BudgetedSelection,
    InterventionCostModel,
    cost_effectiveness,
    select_within_budget,
)

__all__ = [
    "InterventionCostModel",
    "BudgetedSelection",
    "cost_effectiveness",
    "select_within_budget",
    "FairCapConfig",
    "ProblemVariant",
    "all_variants",
    "canonical_variants",
    "unconstrained",
    "FairCap",
    "FairCapResult",
    "run_faircap",
    "GreedyResult",
    "GreedyStep",
    "greedy_select",
    "mine_grouping_patterns",
    "InterventionMiningResult",
    "intervention_items",
    "mine_intervention",
    "mine_interventions_for_groups",
    "BruteForceResult",
    "brute_force_select",
]
