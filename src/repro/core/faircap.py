"""The FairCap driver (Algorithm 1): grouping -> interventions -> greedy.

:class:`FairCap` wires the three steps together and instruments each with a
wall-clock timer, matching the phase breakdown of the paper's Figure 3
(``group_mining`` / ``treatment_mining`` / ``greedy_selection``).

Typical use::

    from repro.core import FairCap, FairCapConfig
    from repro.core.variants import canonical_variants

    variants = canonical_variants("SP", 10_000, theta=0.5, theta_protected=0.5)
    config = FairCapConfig(variant=variants["Group fairness"])
    result = FairCap(config).run(table, schema, dag, protected)
    for rule in result.ruleset:
        print(rule)
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass

from repro.causal.dag import CausalDAG
from repro.core.config import FairCapConfig
from repro.core.greedy import GreedyResult, greedy_select
from repro.core.grouping import mine_grouping_patterns
from repro.core.intervention import (
    intervention_items,
    mine_interventions_for_groups,
)
from repro.mining.apriori import FrequentPattern
from repro.obs import build_report, telemetry_session
from repro.rules.protected import ProtectedGroup
from repro.rules.rule import PrescriptionRule
from repro.rules.ruleset import RuleSet, RulesetEvaluator, RulesetMetrics
from repro.rules.utility import RuleEvaluator
from repro.tabular.schema import Schema
from repro.tabular.table import Table
from repro.utils.errors import SchemaError
from repro.utils.timer import StepTimer

STEP_GROUP_MINING = "group_mining"
STEP_TREATMENT_MINING = "treatment_mining"
STEP_GREEDY = "greedy_selection"


@dataclass(frozen=True)
class FairCapResult:
    """Everything a FairCap run produces.

    Attributes
    ----------
    ruleset:
        The selected prescription rules.
    metrics:
        The Table 4 quantities of the selected ruleset.
    grouping_patterns:
        Step-1 output (frequent grouping patterns).
    candidate_rules:
        Step-2 output (one best rule per grouping pattern, pre-selection).
    timings:
        Per-step wall-clock seconds (Figure 3 phases).
    nodes_evaluated:
        Total lattice nodes whose CATE was estimated in Step 2.
    config:
        The configuration used.
    telemetry:
        The run report (counters, derived rates, span tree) when
        ``config.telemetry`` is set; ``None`` otherwise.  Same document the
        CLI's ``--trace-json`` writes (see :mod:`repro.obs.report`).
    """

    ruleset: RuleSet
    metrics: RulesetMetrics
    grouping_patterns: tuple[FrequentPattern, ...]
    candidate_rules: tuple[PrescriptionRule, ...]
    timings: dict[str, float]
    nodes_evaluated: int
    config: FairCapConfig
    n_rows: int
    n_protected: int
    greedy: GreedyResult
    telemetry: dict | None = None

    def satisfied(self) -> bool:
        """Whether the selected ruleset meets the variant's constraints."""
        variant = self.config.variant
        ok = True
        if variant.fairness is not None:
            ok &= variant.fairness.satisfied(self.metrics, self.ruleset.rules)
        if variant.coverage is not None:
            ok &= variant.coverage.satisfied(
                self.metrics, self.ruleset.rules, self.n_rows, self.n_protected
            )
        return bool(ok)


class FairCap:
    """The FairCap algorithm (paper's Algorithm 1).

    Parameters
    ----------
    config:
        Algorithm tunables (defaults to :class:`FairCapConfig`), including
        the Step-2 execution strategy (``executor`` / ``n_workers``) and the
        CATE memo bound (``cache_size``).
    executor:
        Optional pre-built :mod:`repro.parallel` executor; overrides the
        config's ``executor``/``n_workers`` spelling.  Results are identical
        for every executor and worker count (determinism contract).
    cache:
        Optional :class:`~repro.parallel.cache.EstimationCache` shared
        across runs — e.g. one cache for all nine variants of a Table 4
        block, so overlapping candidates are estimated once.  ``None``
        builds a fresh per-run cache of ``config.cache_size`` entries.
    """

    def __init__(
        self,
        config: FairCapConfig | None = None,
        executor=None,
        cache=None,
    ) -> None:
        self.config = config if config is not None else FairCapConfig()
        self.executor = executor
        self.cache = cache

    def run(
        self,
        table: Table,
        schema: Schema | None,
        dag: CausalDAG,
        protected: ProtectedGroup,
    ) -> FairCapResult:
        """Run the full pipeline on ``table`` and return the selected ruleset.

        Parameters
        ----------
        table:
            The database instance ``D``.
        schema:
            Attribute roles; ``None`` uses the table's own schema.
        dag:
            The causal DAG ``G_D``.
        protected:
            The protected group ``P_p``.
        """
        schema = schema if schema is not None else table.schema
        schema.validate_for_prescription()
        missing = [n for n in schema.names if n not in dag]
        if missing:
            raise SchemaError(f"causal DAG is missing schema attributes: {missing}")

        config = self.config
        executor = self.executor if self.executor is not None else config.make_executor()
        cache = self.cache if self.cache is not None else config.make_cache()
        timer = StepTimer()

        # Out-of-core mode: spill the table into fixed-size row shards and
        # mine against the sharded handle.  An already-sharded input (e.g.
        # from a chunked scenario writer) is used as-is.  The spill is a
        # pure re-layout — fingerprint, masks, and every materialised
        # context sub-table are content-identical — so mined rulesets are
        # bit-for-bit the in-RAM run's.
        shard_tmp: str | None = None
        if config.shard_rows is not None and not getattr(table, "is_sharded", False):
            from repro.datasets.sharded import ShardedTable

            if config.shard_dir is not None:
                directory = config.shard_dir
                reuse = True
            else:
                directory = tempfile.mkdtemp(prefix="faircap-shards-")
                shard_tmp = directory
                reuse = False
            table = ShardedTable.write(
                table, directory, config.shard_rows, reuse=reuse
            )
        try:
            return self._run_pipeline(
                table, schema, dag, protected, config, executor, cache, timer
            )
        finally:
            if shard_tmp is not None:
                shutil.rmtree(shard_tmp, ignore_errors=True)

    def _run_pipeline(
        self, table, schema, dag, protected, config, executor, cache, timer
    ) -> "FairCapResult":
        with telemetry_session(enabled=config.telemetry) as telemetry:
            # The cache keeps its own integer counters; telemetry reads the
            # run's delta at the end rather than hooking every lookup (see
            # EstimationCache.emit_counters).  The baseline matters when a
            # shared cache arrives warm from a previous run.
            cache_baseline = (
                cache.tier_stats()
                if config.telemetry and cache is not None
                else None
            )
            with telemetry.tracer.span(
                "faircap.run",
                n_rows=table.n_rows,
                executor=executor.kind,
                n_workers=executor.n_workers,
            ):
                with timer.step(STEP_GROUP_MINING):
                    grouping_patterns = mine_grouping_patterns(
                        table, schema, config, protected
                    )

                with timer.step(STEP_TREATMENT_MINING):
                    evaluator = RuleEvaluator(
                        table,
                        schema.outcome_name,
                        dag,
                        protected,
                        estimator=config.make_estimator(),
                        min_subgroup_size=config.min_subgroup_size,
                        cache=cache,
                    )
                    items = intervention_items(table, schema, dag, config)
                    candidate_rules, nodes_evaluated = mine_interventions_for_groups(
                        evaluator, grouping_patterns, items, config, executor=executor
                    )

                with timer.step(STEP_GREEDY):
                    ruleset_evaluator = RulesetEvaluator(
                        table, candidate_rules, protected
                    )
                    greedy = greedy_select(ruleset_evaluator, config)

            report = None
            if config.telemetry:
                if cache is not None:
                    tier_stats = cache.emit_counters(
                        telemetry.registry, cache_baseline
                    )
                    for tier, stats in tier_stats.items():
                        telemetry.registry.set_gauge(
                            "cache.entries", stats.entries, tier=tier
                        )
                        telemetry.registry.set_gauge(
                            "cache.hit_rate", stats.hit_rate, tier=tier
                        )
                report = build_report(
                    telemetry,
                    meta={
                        "n_rows": table.n_rows,
                        "executor": executor.kind,
                        "n_workers": executor.n_workers,
                        "n_grouping_patterns": len(grouping_patterns),
                        "n_rules": len(greedy.ruleset),
                        "nodes_evaluated": nodes_evaluated,
                        "gram_subtraction": config.gram_subtraction,
                        "shared_memory": config.shared_memory,
                        "throughput_mode": config.throughput_mode,
                        "timings": timer.as_dict(),
                    },
                )

        return FairCapResult(
            ruleset=greedy.ruleset,
            metrics=greedy.metrics,
            grouping_patterns=tuple(grouping_patterns),
            candidate_rules=tuple(candidate_rules),
            timings=timer.as_dict(),
            nodes_evaluated=nodes_evaluated,
            config=config,
            n_rows=table.n_rows,
            n_protected=int(protected.mask(table).sum()),
            greedy=greedy,
            telemetry=report,
        )


def run_faircap(
    table: Table,
    dag: CausalDAG,
    protected: ProtectedGroup,
    config: FairCapConfig | None = None,
    schema: Schema | None = None,
    executor=None,
    cache=None,
) -> FairCapResult:
    """Convenience facade: ``FairCap(config).run(table, schema, dag, protected)``."""
    return FairCap(config, executor=executor, cache=cache).run(
        table, schema, dag, protected
    )
