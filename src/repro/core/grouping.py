"""Step 1 of FairCap: mining grouping patterns with Apriori (Sec. 5.1).

Grouping patterns are frequent conjunctions over the *immutable* attributes.
The Apriori threshold guarantees each mined pattern covers enough tuples to
be a promising rule body; under a rule-coverage constraint the threshold is
raised to the coverage ``theta`` and patterns failing the protected-coverage
bound ``theta_p`` are filtered here as well, so Steps 2-3 never waste effort
on rules that could not be selected.
"""

from __future__ import annotations

from repro.mining.apriori import AprioriResult, FrequentPattern, apriori
from repro.rules.protected import ProtectedGroup
from repro.core.config import FairCapConfig
from repro.tabular.schema import Schema
from repro.tabular.table import Table
from repro.utils.errors import ConfigError


def mine_grouping_patterns(
    table: Table,
    schema: Schema,
    config: FairCapConfig,
    protected: ProtectedGroup,
) -> tuple[FrequentPattern, ...]:
    """Mine the candidate grouping patterns for FairCap's Step 1.

    Parameters
    ----------
    table:
        The database instance ``D``.
    schema:
        Attribute roles; grouping patterns use the immutable attributes
        (or ``config.grouping_attributes`` when set).
    config:
        Algorithm configuration (Apriori threshold, pattern size caps).
    protected:
        Protected group; used to filter patterns under a rule-coverage
        constraint.

    Returns
    -------
    tuple[FrequentPattern, ...]
        Frequent grouping patterns, largest support first within each size.
    """
    attributes = config.grouping_attributes
    if attributes is None:
        attributes = schema.immutable_names
    else:
        unknown = [a for a in attributes if a not in schema.names]
        if unknown:
            raise ConfigError(f"unknown grouping attributes: {unknown}")
    if not attributes:
        raise ConfigError("no immutable attributes available for grouping patterns")

    result: AprioriResult = apriori(
        table,
        attributes=attributes,
        min_support=config.effective_apriori_support(),
        max_length=config.max_grouping_size,
        continuous_bins=config.continuous_bins,
        max_values_per_attribute=config.max_values_per_attribute,
    )
    patterns = result.patterns

    coverage = config.variant.coverage
    if config.variant.has_rule_coverage and coverage is not None:
        protected_mask = protected.mask(table)
        n_protected = int(protected_mask.sum())
        required_protected = coverage.theta_protected * n_protected
        kept = []
        for fp in patterns:
            covered_protected = int((fp.pattern.mask(table) & protected_mask).sum())
            if covered_protected >= required_protected:
                kept.append(fp)
        patterns = tuple(kept)
    return patterns
