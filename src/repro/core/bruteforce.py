"""Brute-force reference solver for Prescription Ruleset Selection.

Enumerates every subset of the candidate rules (optionally capped in size),
keeps the subsets satisfying the variant's constraints, and maximises the
Def. 4.6 objective

``lambda_1 * (l - size(R)) + lambda_2 * ExpUtility(R)``.

Exponential in the candidate count — usable only for small pools — but exact,
which makes it the ground truth for the greedy-quality tests and the
Sec. 7.3 "Brute Force" comparison on toy instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

from repro.core.config import FairCapConfig
from repro.rules.ruleset import RuleSet, RulesetEvaluator, RulesetMetrics
from repro.utils.errors import ConfigError


@dataclass(frozen=True)
class BruteForceResult:
    """The exact optimum over the candidate pool."""

    indices: tuple[int, ...]
    ruleset: RuleSet
    metrics: RulesetMetrics
    objective: float
    subsets_examined: int


def _satisfies(
    evaluator: RulesetEvaluator,
    indices: Sequence[int],
    metrics: RulesetMetrics,
    config: FairCapConfig,
) -> bool:
    variant = config.variant
    rules = [evaluator.rules[i] for i in indices]
    if variant.fairness is not None:
        if not variant.fairness.satisfied(metrics, rules):
            return False
    if variant.coverage is not None:
        if not variant.coverage.satisfied(
            metrics, rules, evaluator.n, evaluator.n_protected
        ):
            return False
    return True


def brute_force_select(
    evaluator: RulesetEvaluator,
    config: FairCapConfig,
    max_size: int | None = None,
    max_candidates: int = 20,
) -> BruteForceResult:
    """Exhaustively solve the selection problem over ``evaluator``'s pool.

    Parameters
    ----------
    evaluator:
        Candidate pool with fast subset metrics.
    config:
        Supplies the variant (constraints) and the objective weights.
    max_size:
        Optional cap on subset size (default: the pool size, capped by
        ``config.max_rules``).
    max_candidates:
        Safety valve — refuse pools larger than this (2^n blow-up).

    Returns
    -------
    BruteForceResult
        The best *feasible* subset; if no non-empty subset is feasible the
        empty set is returned with objective ``lambda_1 * l``.
    """
    n = len(evaluator)
    if n > max_candidates:
        raise ConfigError(
            f"brute force refuses {n} candidates (cap {max_candidates}); "
            "use the greedy selector instead"
        )
    limit = min(n, config.max_rules if max_size is None else max_size)

    best_indices: tuple[int, ...] = ()
    best_metrics = evaluator.metrics([])
    best_objective = config.lambda_size * n
    examined = 1  # the empty set

    for size in range(1, limit + 1):
        for subset in combinations(range(n), size):
            examined += 1
            metrics = evaluator.metrics(list(subset))
            if not _satisfies(evaluator, subset, metrics, config):
                continue
            objective = config.lambda_size * (n - size) + (
                config.lambda_utility * metrics.expected_utility
            )
            if objective > best_objective:
                best_objective = objective
                best_indices = subset
                best_metrics = metrics

    return BruteForceResult(
        indices=best_indices,
        ruleset=evaluator.subset(list(best_indices)),
        metrics=best_metrics,
        objective=float(best_objective),
        subsets_examined=examined,
    )
