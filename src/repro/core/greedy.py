"""Step 3 of FairCap: greedy ruleset selection (Sec. 5.3).

At each iteration the selector adds the candidate rule maximising

``score(r | R_i) = coverage-gain + benefit + expected-utility-gain``

where the coverage term participates only while the coverage constraint is
unmet (Sec. 5.3: "Once the coverage constraints are met, the focus shifts to
maximizing benefit and utility").  Because the three terms live on different
scales (fractions vs outcome units), the utility-denominated terms are
normalised by the largest absolute candidate utility; this keeps the paper's
score *ordering* while making the stopping threshold scale-free.

Constraint handling:

- **matroid constraints** (rule coverage, individual fairness; Prop. 9.2)
  filter the candidate pool up front — any subset of admissible rules is
  admissible;
- **group fairness** is enforced during selection: a candidate is admissible
  only if the grown ruleset still satisfies the constraint.  If no candidate
  is admissible for the very first pick, the least-violating one is taken so
  the result is never empty (matching the paper's observation that the
  greedy "satisfies the group fairness constraint in all scenarios" —
  thresholds are chosen so admissible rules exist);
- **group coverage** drives the score's coverage term and blocks the
  early-stop until satisfied (or no candidate can improve coverage).

The state needed to score a candidate against the running ruleset —
per-tuple best/worst utilities and the covered mask — is maintained
incrementally; scoring a candidate touches only its covered slice (metric
deltas against running totals), and candidates are scanned in sorted index
order so score ties break deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import FairCapConfig
from repro.fairness.benefit import benefit
from repro.rules.rule import PrescriptionRule
from repro.rules.ruleset import RuleSet, RulesetEvaluator, RulesetMetrics


@dataclass(frozen=True)
class GreedyStep:
    """Trace record of one greedy iteration."""

    candidate_index: int
    score: float
    metrics: RulesetMetrics


@dataclass(frozen=True)
class GreedyResult:
    """Final selection plus the per-iteration trace."""

    indices: tuple[int, ...]
    ruleset: RuleSet
    metrics: RulesetMetrics
    trace: tuple[GreedyStep, ...]


class _IncrementalState:
    """Running per-tuple aggregates for the selected ruleset.

    ``preview`` is the greedy inner loop (every remaining candidate, every
    iteration), so it works on the candidate's covered *slice* only: the
    committed per-tuple arrays stay untouched and the candidate's marginal
    contribution is added to running totals — no full-length array copies.
    ``commit`` (once per iteration) recomputes the totals from the full
    arrays, so committed metrics are exact and preview drift cannot
    accumulate across iterations.
    """

    def __init__(self, evaluator: RulesetEvaluator) -> None:
        self.evaluator = evaluator
        n = evaluator.n
        self.covered = np.zeros(n, dtype=bool)
        self.best_overall = np.full(n, -np.inf)
        self.best_np = np.full(n, -np.inf)
        self.worst_p = np.full(n, np.inf)
        self.size = 0
        self._sum_best = 0.0
        self._sum_worst_p = 0.0
        self._sum_best_np = 0.0
        self._n_cov = 0
        self._n_cov_p = 0
        self._n_cov_np = 0
        # index -> (covered row indices, protected flags on those rows)
        self._rows_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def _candidate_rows(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        cached = self._rows_cache.get(index)
        if cached is None:
            rows = np.flatnonzero(self.evaluator.mask_of(index))
            cached = (rows, self.evaluator.protected_mask[rows])
            self._rows_cache[index] = cached
        return cached

    def preview(self, index: int) -> RulesetMetrics:
        """Metrics of the current selection plus candidate ``index``."""
        ev = self.evaluator
        rows, prot = self._candidate_rows(index)
        u = ev._utilities[index]
        u_p = ev._utilities_p[index]
        u_np = ev._utilities_np[index]

        cov = self.covered[rows]
        best = self.best_overall[rows]
        newly = ~cov
        n_cov = self._n_cov + int(newly.sum())
        n_cov_p = self._n_cov_p + int((newly & prot).sum())
        n_cov_np = self._n_cov_np + int((newly & ~prot).sum())

        # Every candidate row counts max(best, u) afterwards; previously
        # only its covered rows counted (uncovered rows hold -inf, which
        # np.maximum replaces with the candidate utility).
        sum_best = (
            self._sum_best
            + float(np.maximum(best, u).sum())
            - float(best[cov].sum())
        )
        wp = self.worst_p[rows][prot]
        sum_worst_p = (
            self._sum_worst_p
            + float(np.minimum(wp, u_p).sum())
            - float(wp[cov[prot]].sum())
        )
        bnp = self.best_np[rows][~prot]
        sum_best_np = (
            self._sum_best_np
            + float(np.maximum(bnp, u_np).sum())
            - float(bnp[cov[~prot]].sum())
        )
        return self._metrics_from_sums(
            n_cov, n_cov_p, n_cov_np, sum_best, sum_worst_p, sum_best_np,
            self.size + 1,
        )

    def commit(self, index: int) -> None:
        """Add candidate ``index`` to the selection (exact recompute)."""
        ev = self.evaluator
        mask = ev.mask_of(index)
        self.covered |= mask
        self.best_overall[mask] = np.maximum(
            self.best_overall[mask], ev._utilities[index]
        )
        self.best_np[mask] = np.maximum(self.best_np[mask], ev._utilities_np[index])
        self.worst_p[mask] = np.minimum(self.worst_p[mask], ev._utilities_p[index])
        self.size += 1
        covered_p = self.covered & ev.protected_mask
        covered_np = self.covered & ~ev.protected_mask
        self._n_cov = int(self.covered.sum())
        self._n_cov_p = int(covered_p.sum())
        self._n_cov_np = int(covered_np.sum())
        self._sum_best = float(self.best_overall[self.covered].sum())
        self._sum_worst_p = float(self.worst_p[covered_p].sum())
        self._sum_best_np = float(self.best_np[covered_np].sum())

    def metrics(self) -> RulesetMetrics:
        """Metrics of the current selection."""
        return self._metrics_from_sums(
            self._n_cov, self._n_cov_p, self._n_cov_np,
            self._sum_best, self._sum_worst_p, self._sum_best_np, self.size,
        )

    def _metrics_from_sums(
        self,
        n_cov: int,
        n_cov_p: int,
        n_cov_np: int,
        sum_best: float,
        sum_worst_p: float,
        sum_best_np: float,
        size: int,
    ) -> RulesetMetrics:
        ev = self.evaluator
        if size == 0:
            return RulesetMetrics(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        expected = sum_best / ev.n if ev.n else 0.0
        expected_p = sum_worst_p / n_cov_p if n_cov_p else 0.0
        expected_np = sum_best_np / n_cov_np if n_cov_np else 0.0
        return RulesetMetrics(
            n_rules=size,
            coverage=n_cov / ev.n if ev.n else 0.0,
            protected_coverage=(
                n_cov_p / ev.n_protected if ev.n_protected else 0.0
            ),
            expected_utility=expected,
            expected_utility_protected=expected_p,
            expected_utility_non_protected=expected_np,
        )


def _matroid_admissible(
    rule: PrescriptionRule, config: FairCapConfig, n_rows: int, n_protected: int
) -> bool:
    """Per-rule admissibility under the variant's matroid constraints."""
    variant = config.variant
    if variant.has_rule_coverage and variant.coverage is not None:
        if not variant.coverage.satisfied_by_rule(rule, n_rows, n_protected):
            return False
    if variant.has_individual_fairness and variant.fairness is not None:
        if not variant.fairness.satisfied_by_rule(rule):
            return False
    return True


def greedy_select(
    evaluator: RulesetEvaluator,
    config: FairCapConfig,
) -> GreedyResult:
    """Select a ruleset from ``evaluator``'s candidate pool (Sec. 5.3)."""
    variant = config.variant
    n_candidates = len(evaluator)
    candidate_pool = [
        i
        for i in range(n_candidates)
        if _matroid_admissible(
            evaluator.rules[i], config, evaluator.n, evaluator.n_protected
        )
    ]

    scale = max(
        (abs(evaluator.rules[i].utility) for i in candidate_pool), default=1.0
    )
    scale = max(scale, 1e-12)

    state = _IncrementalState(evaluator)
    selected: list[int] = []
    trace: list[GreedyStep] = []
    remaining = set(candidate_pool)

    group_fairness = variant.fairness if variant.has_group_fairness else None
    group_coverage = variant.coverage if variant.has_group_coverage else None

    while remaining and len(selected) < config.max_rules:
        current = state.metrics()
        coverage_unmet = group_coverage is not None and not (
            group_coverage.satisfied_by_metrics(current)
        )

        current_violation = (
            group_fairness.metrics_violation(current)
            if group_fairness is not None and selected
            else np.inf
        )

        best_index = -1
        best_score = -np.inf
        best_preview: RulesetMetrics | None = None
        fallback_index = -1
        fallback_violation = np.inf
        fallback_score = -np.inf

        # Deterministic candidate order: ties on score break toward the
        # lowest candidate index instead of set-iteration order.
        for index in sorted(remaining):
            preview = state.preview(index)
            rule = evaluator.rules[index]
            score = benefit(rule, variant.fairness) / scale
            score += (preview.expected_utility - current.expected_utility) / scale
            if coverage_unmet:
                score += (preview.coverage - current.coverage) + (
                    preview.protected_coverage - current.protected_coverage
                )

            if group_fairness is not None:
                violation = group_fairness.metrics_violation(preview)
                if violation > 0.0:
                    # Track the least-violating candidate as a fallback:
                    # used for the first pick (the result must be non-empty)
                    # and to walk a violating partial ruleset back toward
                    # the feasible region.
                    gains_coverage = coverage_unmet and (
                        preview.coverage > current.coverage
                        or preview.protected_coverage > current.protected_coverage
                    )
                    reduces_violation = violation < current_violation - 1e-12
                    eligible_fallback = (
                        not selected or reduces_violation or gains_coverage
                    )
                    if eligible_fallback and (
                        violation < fallback_violation
                        or (violation == fallback_violation and score > fallback_score)
                    ):
                        fallback_index = index
                        fallback_violation = violation
                        fallback_score = score
                    continue
            if score > best_score:
                best_score = score
                best_index = index
                best_preview = preview

        if best_index < 0:
            if fallback_index >= 0:
                best_index = fallback_index
                best_score = fallback_score
                best_preview = state.preview(fallback_index)
            else:
                break  # no admissible candidate remains

        # Early stop on negligible marginal gain — but never before the
        # group-coverage constraint is met, and never on the first rule.
        if (
            selected
            and not coverage_unmet
            and best_score < config.stop_threshold
        ):
            break

        assert best_preview is not None
        state.commit(best_index)
        selected.append(best_index)
        remaining.discard(best_index)
        trace.append(GreedyStep(best_index, float(best_score), best_preview))

    metrics = state.metrics()
    return GreedyResult(
        indices=tuple(selected),
        ruleset=evaluator.subset(selected),
        metrics=metrics,
        trace=tuple(trace),
    )
