"""Cost-aware prescription selection (the paper's Sec. 8 extension).

The published system treats every intervention as free; Sec. 8 calls out
budget-constrained rule generation as future work ("some interventions may
be impractical or vary significantly in cost ... future research will
incorporate intervention costs to generate budget-constrained rules").
This module implements that extension:

- :class:`InterventionCostModel` prices a treatment pattern as the sum of
  its predicate costs (per attribute-value, per attribute, or a default);
- :func:`cost_effectiveness` ranks rules by utility per unit cost;
- :func:`select_within_budget` greedily selects rules maximising expected
  utility subject to a total per-individual budget — the classic
  cost-benefit greedy for budgeted maximum coverage (Khuller et al. 1999),
  which matches the submodular structure of the Def. 4.6 objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.mining.patterns import Pattern
from repro.rules.rule import PrescriptionRule
from repro.rules.ruleset import RuleSet, RulesetEvaluator, RulesetMetrics
from repro.utils.errors import ConfigError


@dataclass(frozen=True)
class InterventionCostModel:
    """Prices intervention patterns.

    Resolution order per predicate: exact ``(attribute, value)`` entry, then
    ``attribute`` entry, then ``default_cost``.

    Attributes
    ----------
    value_costs:
        ``(attribute, value) -> cost`` for specific prescriptions (e.g.
        pursuing a PhD costs more than learning Python).
    attribute_costs:
        ``attribute -> cost`` fallback per attribute.
    default_cost:
        Cost of any unpriced predicate (must be >= 0).
    """

    value_costs: Mapping[tuple[str, object], float] = field(default_factory=dict)
    attribute_costs: Mapping[str, float] = field(default_factory=dict)
    default_cost: float = 1.0

    def __post_init__(self) -> None:
        if self.default_cost < 0:
            raise ConfigError("default_cost must be non-negative")
        for key, cost in {**dict(self.attribute_costs)}.items():
            if cost < 0:
                raise ConfigError(f"negative cost for attribute {key!r}")
        for key, cost in dict(self.value_costs).items():
            if cost < 0:
                raise ConfigError(f"negative cost for {key!r}")

    def predicate_cost(self, attribute: str, value: object) -> float:
        """Cost of prescribing ``attribute = value``."""
        if (attribute, value) in self.value_costs:
            return float(self.value_costs[(attribute, value)])
        if attribute in self.attribute_costs:
            return float(self.attribute_costs[attribute])
        return self.default_cost

    def cost_of(self, intervention: Pattern) -> float:
        """Total cost of an intervention pattern (sum over predicates)."""
        return sum(
            self.predicate_cost(pred.attribute, pred.value)
            for pred in intervention
        )

    def rule_cost(self, rule: PrescriptionRule) -> float:
        """Cost of a rule = cost of its intervention pattern."""
        return self.cost_of(rule.intervention)


def cost_effectiveness(
    rule: PrescriptionRule, cost_model: InterventionCostModel
) -> float:
    """Utility per unit cost (infinite for free beneficial rules)."""
    cost = cost_model.rule_cost(rule)
    if cost == 0.0:
        return float("inf") if rule.utility > 0 else 0.0
    return rule.utility / cost


@dataclass(frozen=True)
class BudgetedSelection:
    """Result of the budget-constrained greedy."""

    indices: tuple[int, ...]
    ruleset: RuleSet
    metrics: RulesetMetrics
    total_cost: float
    budget: float


def select_within_budget(
    evaluator: RulesetEvaluator,
    cost_model: InterventionCostModel,
    budget: float,
    max_rules: int | None = None,
) -> BudgetedSelection:
    """Greedy budgeted selection: max expected utility s.t. total cost <= budget.

    At each step the rule with the best marginal expected utility per unit
    cost that still fits the remaining budget is added (the standard
    cost-benefit greedy for budgeted submodular maximisation).

    Parameters
    ----------
    evaluator:
        The candidate pool.
    cost_model:
        Prices for intervention patterns.
    budget:
        Total cost allowance (>= 0).
    max_rules:
        Optional cap on the number of selected rules.
    """
    if budget < 0:
        raise ConfigError("budget must be non-negative")
    limit = len(evaluator) if max_rules is None else max_rules

    selected: list[int] = []
    remaining = set(range(len(evaluator)))
    spent = 0.0
    current = evaluator.metrics([])
    while remaining and len(selected) < limit:
        best_index = -1
        best_ratio = 0.0
        best_preview: RulesetMetrics | None = None
        for index in remaining:
            cost = cost_model.rule_cost(evaluator.rules[index])
            if spent + cost > budget:
                continue
            preview = evaluator.metrics(selected + [index])
            gain = preview.expected_utility - current.expected_utility
            ratio = gain / cost if cost > 0 else (
                float("inf") if gain > 0 else 0.0
            )
            if ratio > best_ratio:
                best_ratio = ratio
                best_index = index
                best_preview = preview
        if best_index < 0 or best_preview is None:
            break
        selected.append(best_index)
        remaining.discard(best_index)
        spent += cost_model.rule_cost(evaluator.rules[best_index])
        current = best_preview

    return BudgetedSelection(
        indices=tuple(selected),
        ruleset=evaluator.subset(selected),
        metrics=current,
        total_cost=spent,
        budget=budget,
    )
