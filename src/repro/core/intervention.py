"""Step 2 of FairCap: mining fair, high-utility intervention patterns
(Sec. 5.2 and the variant adjustments of Sec. 5.4).

For each grouping pattern mined in Step 1, the space of candidate treatments
is the lattice of conjunctions over the *mutable* attributes.  The lattice
is traversed top-down (:func:`repro.mining.lattice.traverse_lattice`); a
node is *kept* — i.e. its supersets are explored — when its CATE is positive,
estimable, and statistically significant.

The best treatment for the grouping pattern is then chosen by *benefit*:

- no fairness constraint: benefit = utility (CauSumX's highest-CATE search);
- group SP: the utility/(1+gap) penalty of Sec. 5.2;
- group BGL: the utility/(1+shortfall) penalty of Sec. 5.4;
- individual fairness (SP or BGL): only treatments that themselves satisfy
  the per-rule constraint are eligible; among them, highest CATE wins.

Implementation notes: the paper's optimisation (i) — discarding mutable
attributes with no causal path to the outcome — is applied when building the
item list; optimisation (ii) (parallelism across grouping patterns) is
available through :mod:`repro.parallel` — pass an executor to
:func:`mine_interventions_for_groups` (or set ``FairCapConfig.executor`` /
``n_workers``).  The serial executor remains the default so the Figure 3/4
runtime shapes reflect algorithmic work rather than process-pool noise, and
the differential suite guarantees all executors return identical rules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.causal.dag import CausalDAG
from repro.core.config import FairCapConfig
from repro.fairness.benefit import benefit
from repro.mining.apriori import build_items
from repro.mining.lattice import LatticeNode, traverse_lattice
from repro.mining.patterns import Pattern
from repro.rules.rule import PrescriptionRule
from repro.rules.utility import GroupEvaluationContext, RuleEvaluator
from repro.tabular.schema import Schema
from repro.utils.errors import ConfigError


@dataclass(frozen=True)
class InterventionMiningResult:
    """Outcome of Step 2 for one grouping pattern.

    Attributes
    ----------
    best:
        The selected rule (None when no eligible treatment exists).
    candidates:
        Every positive-utility rule materialised in the lattice (used by
        diagnostics and by the brute-force reference solver).
    nodes_evaluated:
        Number of lattice nodes whose CATE was estimated.
    """

    best: PrescriptionRule | None
    candidates: tuple[PrescriptionRule, ...]
    nodes_evaluated: int


def intervention_items(
    table, schema: Schema, dag: CausalDAG, config: FairCapConfig
) -> list[Pattern]:
    """Build the level-1 treatment items (one per mutable attribute value).

    Applies the paper's optimisation (i): attributes without a directed path
    to the outcome are discarded when ``config.prune_non_causal`` is set.
    """
    attributes = config.intervention_attributes
    if attributes is None:
        attributes = schema.mutable_names
    else:
        unknown = [a for a in attributes if a not in schema.names]
        if unknown:
            raise ConfigError(f"unknown intervention attributes: {unknown}")
    if not attributes:
        raise ConfigError("no mutable attributes available for interventions")

    if config.prune_non_causal:
        relevant = dag.causally_relevant(schema.outcome_name)
        attributes = tuple(a for a in attributes if a in relevant)

    return build_items(
        table,
        attributes,
        continuous_bins=config.continuous_bins,
        max_values_per_attribute=config.max_values_per_attribute,
    )


def mine_intervention(
    context: GroupEvaluationContext,
    items: list[Pattern],
    config: FairCapConfig,
    lattice_executor=None,
) -> InterventionMiningResult:
    """Run the Step-2 lattice search for one grouping pattern.

    Parameters
    ----------
    context:
        Pre-built evaluation context for the grouping pattern (holds the
        filtered sub-table and protected split).
    items:
        Candidate level-1 treatment items (from :func:`intervention_items`).
    config:
        Algorithm configuration; ``config.variant.fairness`` selects the
        benefit function.
    lattice_executor:
        Optional in-process executor (serial/thread) used to evaluate each
        lattice level's candidate batch concurrently; results are identical
        to the serial traversal (see :func:`repro.mining.lattice.traverse_lattice`).
        Moot under the batched estimation engine, which already consumes a
        level at a time.
    """
    alpha = config.significance_alpha
    fairness = config.variant.fairness

    def decide(rule: PrescriptionRule) -> tuple[bool, PrescriptionRule]:
        keep = rule.utility > 0.0
        if keep and alpha is not None:
            keep = rule.estimate is not None and rule.estimate.is_significant(alpha)
        return keep, rule

    def evaluate(pattern: Pattern) -> tuple[bool, PrescriptionRule]:
        return decide(context.evaluate(pattern))

    evaluate_many = None
    if config.batch_estimation and hasattr(context.evaluator.estimator, "estimate_level"):
        # Batched FWL engine: one GEMM per lattice level instead of one OLS
        # per candidate (repro.causal.batch).  The scalar path above stays
        # as the differential reference (config.batch_estimation=False).
        def evaluate_many(patterns: list[Pattern]) -> list[tuple[bool, PrescriptionRule]]:
            return [decide(rule) for rule in context.evaluate_batch(patterns)]

    nodes: list[LatticeNode] = traverse_lattice(
        items,
        evaluate,
        max_level=config.max_intervention_size,
        executor=lattice_executor,
        evaluate_many=evaluate_many,
    )
    kept = [node.payload for node in nodes if node.keep]
    candidates: list[PrescriptionRule] = [
        rule for rule in kept if isinstance(rule, PrescriptionRule)
    ]

    eligible = candidates
    if fairness is not None and fairness.is_matroid:
        # Individual fairness: Step 2 only selects treatments that are
        # guaranteed to meet the per-rule constraint (Sec. 5.4).
        eligible = [r for r in candidates if fairness.satisfied_by_rule(r)]

    if not eligible:
        return InterventionMiningResult(
            best=None, candidates=tuple(candidates), nodes_evaluated=len(nodes)
        )

    if fairness is not None and fairness.is_matroid:
        best = max(eligible, key=lambda r: r.utility)
    else:
        best = max(eligible, key=lambda r: benefit(r, fairness))
    return InterventionMiningResult(
        best=best, candidates=tuple(candidates), nodes_evaluated=len(nodes)
    )


def mine_interventions_for_groups(
    evaluator: RuleEvaluator,
    grouping_patterns,
    items: list[Pattern],
    config: FairCapConfig,
    executor=None,
) -> tuple[list[PrescriptionRule], int]:
    """Run Step 2 for every grouping pattern; return rules + node count.

    Each grouping pattern contributes at most one rule (its best treatment),
    mirroring Algorithm 1's loop.  With an ``executor`` (see
    :mod:`repro.parallel.executors`) the per-pattern searches fan out in
    chunks; the rule list is reassembled in Step-1 mining order either way,
    so the result is independent of the execution strategy.
    """
    if executor is not None and executor.kind != "serial":
        from repro.parallel.mining import mine_groups

        return mine_groups(evaluator, grouping_patterns, items, config, executor)

    rules: list[PrescriptionRule] = []
    nodes_total = 0
    for frequent in grouping_patterns:
        context = evaluator.context(frequent.pattern)
        result = mine_intervention(context, items, config)
        nodes_total += result.nodes_evaluated
        if result.best is not None:
            rules.append(result.best)
    return rules, nodes_total
