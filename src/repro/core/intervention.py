"""Step 2 of FairCap: mining fair, high-utility intervention patterns
(Sec. 5.2 and the variant adjustments of Sec. 5.4).

For each grouping pattern mined in Step 1, the space of candidate treatments
is the lattice of conjunctions over the *mutable* attributes.  The lattice
is traversed top-down (:func:`repro.mining.lattice.traverse_lattice`); a
node is *kept* — i.e. its supersets are explored — when its CATE is positive,
estimable, and statistically significant.

The best treatment for the grouping pattern is then chosen by *benefit*:

- no fairness constraint: benefit = utility (CauSumX's highest-CATE search);
- group SP: the utility/(1+gap) penalty of Sec. 5.2;
- group BGL: the utility/(1+shortfall) penalty of Sec. 5.4;
- individual fairness (SP or BGL): only treatments that themselves satisfy
  the per-rule constraint are eligible; among them, highest CATE wins.

Implementation notes: the paper's optimisation (i) — discarding mutable
attributes with no causal path to the outcome — is applied when building the
item list; optimisation (ii) (parallelism across grouping patterns) is
available through :mod:`repro.parallel` — pass an executor to
:func:`mine_interventions_for_groups` (or set ``FairCapConfig.executor`` /
``n_workers``).  The serial executor remains the default so the Figure 3/4
runtime shapes reflect algorithmic work rather than process-pool noise, and
the differential suite guarantees all executors return identical rules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.causal.dag import CausalDAG
from repro.core.config import FairCapConfig
from repro.fairness.benefit import benefit
from repro.mining.apriori import build_items
from repro.mining.lattice import LatticeNode, LatticeWalk, traverse_lattice
from repro.mining.patterns import Pattern
from repro.obs.runtime import current as obs_current
from repro.rules.rule import PrescriptionRule
from repro.rules.utility import (
    GroupEvaluationContext,
    RuleEvaluator,
    keep_candidate,
)
from repro.tabular.schema import Schema
from repro.utils.errors import ConfigError


@dataclass(frozen=True)
class InterventionMiningResult:
    """Outcome of Step 2 for one grouping pattern.

    Attributes
    ----------
    best:
        The selected rule (None when no eligible treatment exists).
    candidates:
        Every positive-utility rule materialised in the lattice (used by
        diagnostics and by the brute-force reference solver).
    nodes_evaluated:
        Number of lattice nodes whose CATE was estimated.
    """

    best: PrescriptionRule | None
    candidates: tuple[PrescriptionRule, ...]
    nodes_evaluated: int


def intervention_items(
    table, schema: Schema, dag: CausalDAG, config: FairCapConfig
) -> list[Pattern]:
    """Build the level-1 treatment items (one per mutable attribute value).

    Applies the paper's optimisation (i): attributes without a directed path
    to the outcome are discarded when ``config.prune_non_causal`` is set.
    """
    attributes = config.intervention_attributes
    if attributes is None:
        attributes = schema.mutable_names
    else:
        unknown = [a for a in attributes if a not in schema.names]
        if unknown:
            raise ConfigError(f"unknown intervention attributes: {unknown}")
    if not attributes:
        raise ConfigError("no mutable attributes available for interventions")

    if config.prune_non_causal:
        relevant = dag.causally_relevant(schema.outcome_name)
        attributes = tuple(a for a in attributes if a in relevant)

    return build_items(
        table,
        attributes,
        continuous_bins=config.continuous_bins,
        max_values_per_attribute=config.max_values_per_attribute,
    )


def _make_decider(config: FairCapConfig):
    """The keep/expand decision shared by every Step-2 execution path.

    Delegates to :func:`repro.rules.utility.keep_candidate` (a rule's
    utility is ``usable(overall)``, so testing the overall estimate is the
    same predicate) — the frontier's phase-2 planning uses the identical
    helper, keeping both engines on the same lattice by construction.
    """
    alpha = config.significance_alpha

    def decide(rule: PrescriptionRule) -> tuple[bool, PrescriptionRule]:
        return keep_candidate(rule.estimate, alpha), rule

    return decide


def _select_best(
    candidates: list[PrescriptionRule], fairness
) -> PrescriptionRule | None:
    """Pick one grouping pattern's best treatment (Sec. 5.2 / 5.4).

    Shared by the per-context and frontier paths so their selection logic
    cannot drift: matroid (individual-fairness) variants filter to
    per-rule-satisfying treatments and take the highest utility; everything
    else maximises the variant's benefit function.
    """
    eligible = candidates
    if fairness is not None and fairness.is_matroid:
        # Individual fairness: Step 2 only selects treatments that are
        # guaranteed to meet the per-rule constraint (Sec. 5.4).
        eligible = [r for r in candidates if fairness.satisfied_by_rule(r)]
    if not eligible:
        return None
    if fairness is not None and fairness.is_matroid:
        return max(eligible, key=lambda r: r.utility)
    return max(eligible, key=lambda r: benefit(r, fairness))


def _batched_path_available(config: FairCapConfig, evaluator: RuleEvaluator) -> bool:
    return config.batch_estimation and hasattr(evaluator.estimator, "estimate_level")


#: Maximum grouping-pattern contexts alive in one frontier (memory bound;
#: windowing is result-invariant — see frontier_mine_patterns).
FRONTIER_WINDOW = 64


def frontier_enabled(config: FairCapConfig, evaluator: RuleEvaluator) -> bool:
    """Whether Step 2 should run through the multi-context frontier batcher."""
    return (
        config.frontier_batching
        and config.batch_estimation
        and hasattr(evaluator.estimator, "estimate_level_rows")
    )


def mine_intervention(
    context: GroupEvaluationContext,
    items: list[Pattern],
    config: FairCapConfig,
    lattice_executor=None,
) -> InterventionMiningResult:
    """Run the Step-2 lattice search for one grouping pattern.

    Parameters
    ----------
    context:
        Pre-built evaluation context for the grouping pattern (holds the
        filtered sub-table and protected split).
    items:
        Candidate level-1 treatment items (from :func:`intervention_items`).
    config:
        Algorithm configuration; ``config.variant.fairness`` selects the
        benefit function.
    lattice_executor:
        Optional in-process executor (serial/thread) used to evaluate each
        lattice level's candidate batch concurrently; results are identical
        to the serial traversal (see :func:`repro.mining.lattice.traverse_lattice`).
        Moot under the batched estimation engine, which already consumes a
        level at a time.
    """
    decide = _make_decider(config)

    def evaluate(pattern: Pattern) -> tuple[bool, PrescriptionRule]:
        return decide(context.evaluate(pattern))

    evaluate_many = None
    if _batched_path_available(config, context.evaluator):
        # Batched FWL engine: one GEMM per lattice level instead of one OLS
        # per candidate (repro.causal.batch).  The scalar path above stays
        # as the differential reference (config.batch_estimation=False).
        # With config.bitset_masks the level's stacks come from packed item
        # bitsets with popcount support pruning (bit-identical rules).
        use_bitsets = config.bitset_masks

        def evaluate_many(patterns: list[Pattern]) -> list[tuple[bool, PrescriptionRule]]:
            return [
                decide(rule)
                for rule in context.evaluate_batch(patterns, use_bitsets=use_bitsets)
            ]

    nodes: list[LatticeNode] = traverse_lattice(
        items,
        evaluate,
        max_level=config.max_intervention_size,
        executor=lattice_executor,
        evaluate_many=evaluate_many,
    )
    return _result_from_nodes(nodes, config)


def _result_from_nodes(
    nodes: list[LatticeNode], config: FairCapConfig
) -> InterventionMiningResult:
    kept = [node.payload for node in nodes if node.keep]
    candidates: list[PrescriptionRule] = [
        rule for rule in kept if isinstance(rule, PrescriptionRule)
    ]
    best = _select_best(candidates, config.variant.fairness)
    telemetry = obs_current()
    if telemetry.enabled:
        _count_mining_nodes(telemetry.registry, nodes, best)
    return InterventionMiningResult(
        best=best, candidates=tuple(candidates), nodes_evaluated=len(nodes)
    )


def _count_mining_nodes(registry, nodes: list[LatticeNode], best) -> None:
    """Mining-pipeline counters, taken at the shared result-assembly point.

    Both Step-2 engines (per-context lattice and frontier) produce their
    node lists through the same traversal, which the determinism contract
    pins to be identical across executors, worker counts and chunkings —
    so these counters are flagged *deterministic*: their merged totals are
    exact, and the observability differential compares them bit-for-bit.
    Invalid-estimate reasons are read off the rules' ``CateResult``s, which
    are equally traversal-determined.
    """
    per_level: dict[int, list[int]] = {}
    reasons: dict[str, int] = {}
    for node in nodes:
        cell = per_level.setdefault(node.level, [0, 0])
        cell[0] += 1
        if node.keep:
            cell[1] += 1
        estimate = getattr(node.payload, "estimate", None)
        if estimate is not None and not estimate.valid:
            reason = estimate.reason or "unknown"
            reasons[reason] = reasons.get(reason, 0) + 1
    for level, (candidates, kept) in sorted(per_level.items()):
        registry.inc(
            "mining.candidates", candidates, deterministic=True, level=level
        )
        if kept:
            registry.inc("mining.kept", kept, deterministic=True, level=level)
    for reason, count in reasons.items():
        registry.inc(
            "mining.invalid_estimates", count, deterministic=True, reason=reason
        )
    if best is not None:
        registry.inc("mining.rules", 1, deterministic=True)


def frontier_mine_patterns(
    evaluator: RuleEvaluator,
    grouping_patterns,
    items: list[Pattern],
    config: FairCapConfig,
) -> list[InterventionMiningResult]:
    """Run Step 2 for many grouping patterns as one multi-level frontier.

    Instead of traversing each grouping pattern's treatment lattice to
    completion in turn, every context advances in lock-step: round k
    collects level-k candidates of *all* active contexts
    (:class:`~repro.mining.lattice.LatticeWalk` keeps candidate generation
    identical to the serial traversal), plans them through the bitset
    compose/prune layer, and answers the round's sub-population batches in
    one estimation pass (:meth:`~repro.rules.utility.RuleEvaluator.estimate_requests`).
    The per-level fixed costs — float conversion, adjustment restriction,
    digesting — are paid once per (context, level) rather than once per
    sub-population, which is what the many-small-groups regime was missing.

    Determinism: estimation batches stay per (context, sub-population,
    adjustment set) and every cached entry keeps level granularity, so the
    mined rules are independent of how many contexts share a round — a
    process worker fronting its chunk produces bit-identical results to a
    serial run fronting everything (the :mod:`repro.parallel` contract).
    Returns one :class:`InterventionMiningResult` per grouping pattern, in
    input order, exactly as the per-context loop would.
    """
    patterns = list(grouping_patterns)
    if not patterns:
        return []
    # Bound peak memory: every context in a frontier pins its sub-tables,
    # bitset caches and factorization stores for the walk's lifetime, so
    # hundreds of grouping patterns are processed in fixed-size windows
    # (released between windows).  Windowing cannot change results: every
    # estimation batch's bits are a pure function of its own request
    # content, never of which contexts share a round (the same property
    # that makes process-pool chunking safe).
    if len(patterns) > FRONTIER_WINDOW:
        results: list[InterventionMiningResult] = []
        for start in range(0, len(patterns), FRONTIER_WINDOW):
            results.extend(
                frontier_mine_patterns(
                    evaluator,
                    patterns[start : start + FRONTIER_WINDOW],
                    items,
                    config,
                )
            )
        return results
    alpha = config.significance_alpha
    use_bitsets = config.bitset_masks
    gram_subtraction = getattr(config, "gram_subtraction", True)
    # Throughput mode (config.throughput_mode): answer each round through
    # the merged cross-context driver instead of the per-request kernel —
    # wider GEMMs, no digests, no result cache.  This deliberately trades
    # the serial ≡ process bit-identity contract for speed; certification
    # moves from the differential suite to the 36-world scenario oracle.
    throughput = getattr(config, "throughput_mode", False)
    walks: list[tuple[GroupEvaluationContext, LatticeWalk]] = []
    for frequent in patterns:
        context = evaluator.context(getattr(frequent, "pattern", frequent))
        walk = LatticeWalk(items, max_level=config.max_intervention_size)
        walks.append((context, walk))

    telemetry = obs_current()
    while True:
        round_work = []
        for context, walk in walks:
            if walk.done:
                continue
            work = context.begin_level(
                walk.candidates(),
                use_bitsets=use_bitsets,
                gram_subtraction=gram_subtraction,
                throughput=throughput,
            )
            round_work.append((walk, work))
        if not round_work:
            break
        level = round_work[0][0].level
        with telemetry.tracer.span(
            "frontier.round",
            level=level,
            contexts=len(round_work),
            candidates=sum(len(work.interventions) for _, work in round_work),
        ):
            # Phase 1: every context's overall batch — the keep decision
            # needs nothing else.  Phase 2: protected / non-protected
            # batches for the kept columns only (a rejected candidate's
            # sub-population CATEs are never read).
            estimate = (
                evaluator.estimate_requests_merged
                if throughput
                else evaluator.estimate_requests
            )
            phase1 = [request for _, work in round_work for request in work.requests]
            estimate(phase1)
            phase2 = [
                request
                for _, work in round_work
                for request in work.followup(alpha)
            ]
            estimate(phase2)
            for walk, work in round_work:
                walk.advance(work.finish())
        if telemetry.enabled:
            _count_frontier_round(telemetry.registry, level, round_work, phase1, phase2)

    return [_result_from_nodes(walk.nodes, config) for _, walk in walks]


def _count_frontier_round(registry, level, round_work, phase1, phase2) -> None:
    """Per-round mining counters (all deterministic).

    Popcount-pruned candidates, and the columns actually estimated in each
    phase, are pure functions of each context's own level content — never
    of which contexts share the round or how patterns were chunked across
    workers (the same property that makes frontier windowing safe) — so
    process-pool merges reproduce a serial run's totals exactly.
    """
    pruned = sum(len(work.pruned) for _, work in round_work)
    if pruned:
        registry.inc("mining.pruned", pruned, deterministic=True, level=level)
    for phase, requests in (("overall", phase1), ("subpopulation", phase2)):
        columns = sum(request.treated_rows.shape[0] for request in requests)
        if columns:
            registry.inc(
                "mining.estimated_columns",
                columns,
                deterministic=True,
                phase=phase,
                level=level,
            )


def mine_interventions_for_groups(
    evaluator: RuleEvaluator,
    grouping_patterns,
    items: list[Pattern],
    config: FairCapConfig,
    executor=None,
) -> tuple[list[PrescriptionRule], int]:
    """Run Step 2 for every grouping pattern; return rules + node count.

    Each grouping pattern contributes at most one rule (its best treatment),
    mirroring Algorithm 1's loop.  With an ``executor`` (see
    :mod:`repro.parallel.executors`) the per-pattern searches fan out in
    chunks; the rule list is reassembled in Step-1 mining order either way,
    so the result is independent of the execution strategy.  With
    ``config.checkpoint_dir`` set, completed per-pattern results are
    persisted as they land and a rerun resumes from them
    (:class:`~repro.parallel.resilience.RunCheckpoint`) — resumed results
    are the saved bits, so resume ≡ fresh by construction.
    """
    patterns = list(grouping_patterns)
    if getattr(config, "checkpoint_dir", None):
        detailed = _mine_checkpointed(evaluator, patterns, items, config, executor)
    else:
        detailed = mine_interventions_detailed(
            evaluator, patterns, items, config, executor
        )
    rules = [best for best, _ in detailed if best is not None]
    return rules, sum(nodes for _, nodes in detailed)


def mine_interventions_detailed(
    evaluator: RuleEvaluator,
    grouping_patterns,
    items: list[Pattern],
    config: FairCapConfig,
    executor=None,
) -> list[tuple[PrescriptionRule | None, int]]:
    """Per-pattern Step-2 results: one ``(best, nodes)`` per pattern, in order."""
    if executor is not None and executor.kind != "serial":
        from repro.parallel.mining import mine_groups_detailed

        return mine_groups_detailed(
            evaluator, grouping_patterns, items, config, executor
        )

    if frontier_enabled(config, evaluator):
        results = frontier_mine_patterns(evaluator, grouping_patterns, items, config)
        return [(r.best, r.nodes_evaluated) for r in results]

    detailed: list[tuple[PrescriptionRule | None, int]] = []
    for frequent in grouping_patterns:
        context = evaluator.context(frequent.pattern)
        result = mine_intervention(context, items, config)
        detailed.append((result.best, result.nodes_evaluated))
    return detailed


#: Patterns mined between checkpoint saves.  Durability granularity, not a
#: result knob: frontier windowing and process chunking are both
#: result-invariant, so any window size yields identical bits.
CHECKPOINT_WINDOW = 8


def _mine_checkpointed(
    evaluator: RuleEvaluator,
    patterns: list,
    items: list[Pattern],
    config: FairCapConfig,
    executor=None,
) -> list[tuple[PrescriptionRule | None, int]]:
    """Mine with per-pattern persistence: load hits, mine misses in windows.

    A killed driver loses at most one window of work; everything saved
    before the crash is loaded verbatim on the next run (the files hold
    the pickled results themselves, so a resumed run is bit-identical to
    a fresh one).  The injected ``abort`` fault fires here, after the
    planned save count, to make crashed-driver tests deterministic.
    """
    from repro.parallel.resilience import RunCheckpoint, maybe_driver_abort

    checkpoint = RunCheckpoint.for_run(
        config.checkpoint_dir, evaluator, config, items
    )
    results: dict[int, tuple] = {}
    missing: list[int] = []
    for index, frequent in enumerate(patterns):
        hit = checkpoint.load(index, frequent.pattern)
        if hit is None:
            missing.append(index)
        else:
            results[index] = hit
    plan = getattr(config, "fault_plan", None)
    saves = 0
    for start in range(0, len(missing), CHECKPOINT_WINDOW):
        window = missing[start : start + CHECKPOINT_WINDOW]
        mined = mine_interventions_detailed(
            evaluator, [patterns[i] for i in window], items, config, executor
        )
        for index, (best, nodes) in zip(window, mined):
            checkpoint.save(index, patterns[index].pattern, best, nodes)
            results[index] = (best, nodes)
            saves += 1
            maybe_driver_abort(plan, saves)
    return [results[index] for index in range(len(patterns))]
