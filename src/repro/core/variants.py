"""The problem-variant space of Prescription Ruleset Selection (Sec. 4.7).

A :class:`ProblemVariant` is a (fairness constraint, coverage constraint)
pair, either of which may be absent.  The paper's Figure 2 decision tree
yields nine structural combinations; since a fairness constraint can be
instantiated as SP or BGL (the choice is left to the user), the paper counts
"18 distinct problem variants" — :func:`canonical_variants` enumerates the
nine structural ones for a chosen fairness kind, and
:func:`all_variants` both kinds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fairness.constraints import (
    FairnessConstraint,
    FairnessKind,
    FairnessScope,
)
from repro.fairness.coverage import CoverageConstraint, CoverageKind


@dataclass(frozen=True)
class ProblemVariant:
    """One variant: optional fairness constraint + optional coverage constraint."""

    fairness: FairnessConstraint | None = None
    coverage: CoverageConstraint | None = None

    @property
    def name(self) -> str:
        """The Table 4 row label for this variant."""
        parts: list[str] = []
        if self.coverage is not None:
            parts.append(
                "Group coverage"
                if self.coverage.kind is CoverageKind.GROUP
                else "Rule coverage"
            )
        if self.fairness is not None:
            parts.append(
                "Group fairness"
                if self.fairness.scope is FairnessScope.GROUP
                else "Individual fairness"
            )
        if not parts:
            return "No constraints"
        return ", ".join(parts)

    @property
    def has_group_fairness(self) -> bool:
        """Whether a ruleset-level fairness constraint is active."""
        return (
            self.fairness is not None
            and self.fairness.scope is FairnessScope.GROUP
        )

    @property
    def has_individual_fairness(self) -> bool:
        """Whether a per-rule fairness constraint is active."""
        return (
            self.fairness is not None
            and self.fairness.scope is FairnessScope.INDIVIDUAL
        )

    @property
    def has_group_coverage(self) -> bool:
        """Whether a ruleset-level coverage constraint is active."""
        return (
            self.coverage is not None and self.coverage.kind is CoverageKind.GROUP
        )

    @property
    def has_rule_coverage(self) -> bool:
        """Whether a per-rule coverage constraint is active."""
        return self.coverage is not None and self.coverage.kind is CoverageKind.RULE

    def describe(self) -> str:
        """Long-form description with thresholds."""
        parts = []
        if self.fairness is not None:
            parts.append(self.fairness.describe())
        if self.coverage is not None:
            parts.append(self.coverage.describe())
        return "; ".join(parts) if parts else "no constraints"


def unconstrained() -> ProblemVariant:
    """The no-constraints variant (Step 2 then matches CauSumX)."""
    return ProblemVariant()


def canonical_variants(
    fairness_kind: str | FairnessKind,
    fairness_threshold: float,
    theta: float,
    theta_protected: float,
) -> dict[str, ProblemVariant]:
    """The nine structural variants of Table 4, in the paper's row order.

    Parameters
    ----------
    fairness_kind:
        SP (Stack Overflow evaluation) or BGL (German Credit evaluation).
    fairness_threshold:
        ``epsilon`` for SP or ``tau`` for BGL.
    theta, theta_protected:
        Coverage thresholds shared by the coverage-constrained variants.
    """
    kind = FairnessKind(fairness_kind)

    def fair(scope: FairnessScope) -> FairnessConstraint:
        return FairnessConstraint(kind, scope, fairness_threshold)

    def cover(cov_kind: CoverageKind) -> CoverageConstraint:
        return CoverageConstraint(cov_kind, theta, theta_protected)

    group_f = fair(FairnessScope.GROUP)
    indiv_f = fair(FairnessScope.INDIVIDUAL)
    group_c = cover(CoverageKind.GROUP)
    rule_c = cover(CoverageKind.RULE)

    variants = [
        ProblemVariant(),
        ProblemVariant(coverage=group_c),
        ProblemVariant(coverage=rule_c),
        ProblemVariant(fairness=group_f),
        ProblemVariant(fairness=indiv_f),
        ProblemVariant(fairness=group_f, coverage=group_c),
        ProblemVariant(fairness=group_f, coverage=rule_c),
        ProblemVariant(fairness=indiv_f, coverage=group_c),
        ProblemVariant(fairness=indiv_f, coverage=rule_c),
    ]
    return {variant.name: variant for variant in variants}


def all_variants(
    sp_epsilon: float,
    bgl_tau: float,
    theta: float,
    theta_protected: float,
) -> dict[str, ProblemVariant]:
    """All 18 variants (9 structural x {SP, BGL}), keyed by qualified name.

    Names are prefixed ``SP:`` / ``BGL:`` except the three fairness-free
    variants, which are shared and appear once without a prefix.
    """
    result: dict[str, ProblemVariant] = {}
    for kind, threshold in (
        (FairnessKind.STATISTICAL_PARITY, sp_epsilon),
        (FairnessKind.BOUNDED_GROUP_LOSS, bgl_tau),
    ):
        for name, variant in canonical_variants(
            kind, threshold, theta, theta_protected
        ).items():
            if variant.fairness is None:
                result[name] = variant
            else:
                result[f"{kind.value}: {name}"] = variant
    return result
