"""Configuration of the FairCap algorithm.

:class:`FairCapConfig` gathers every tunable of Algorithm 1 with the paper's
defaults (Sec. 6, "Default parameters"): Apriori threshold 0.1, at most ~20
rules, linear-adjustment CATE estimation with a 0.05 significance filter.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.causal.estimators import LinearAdjustmentEstimator, StratifiedEstimator
from repro.core.variants import ProblemVariant
from repro.parallel.cache import EstimationCache
from repro.parallel.executors import EXECUTOR_KINDS, make_executor
from repro.parallel.resilience import FaultPlan
from repro.utils.errors import ConfigError

ESTIMATORS = {
    "linear": LinearAdjustmentEstimator,
    "stratified": StratifiedEstimator,
}


@dataclass(frozen=True)
class FairCapConfig:
    """All tunables of the FairCap pipeline.

    Attributes
    ----------
    variant:
        The problem variant (fairness + coverage constraints) to solve.
    apriori_min_support:
        The Apriori threshold ``tau`` of Step 1 (paper default 0.1).  Under a
        rule-coverage constraint the effective threshold is raised to the
        coverage ``theta`` (Sec. 5.4).
    max_grouping_size:
        Maximum number of attributes in a grouping pattern.
    max_intervention_size:
        Maximum number of attributes in an intervention pattern (lattice
        depth of Step 2).
    max_values_per_attribute:
        Per-attribute cap on candidate values when building grouping items
        and treatment items (None = no cap).
    continuous_bins:
        Quantile bins used for continuous attributes in patterns.
    significance_alpha:
        Keep only treatments whose CATE is significant at this level
        (None disables the filter).
    min_subgroup_size:
        Minimum subgroup size for a CATE to count (smaller -> utility 0).
    estimator:
        ``"linear"`` (OLS adjustment; DoWhy's default) or ``"stratified"``.
    lambda_size, lambda_utility:
        Objective weights ``lambda_1`` and ``lambda_2`` of Def. 4.6.
    max_rules:
        Hard cap on the ruleset size (the paper's tables top out at 20).
    stop_threshold:
        Greedy stops when the best normalised marginal score drops below
        this (after coverage constraints are met).
    prune_non_causal:
        Step-2 optimisation (i): drop mutable attributes with no directed
        path to the outcome in the DAG.
    grouping_attributes, intervention_attributes:
        Optional explicit attribute subsets (default: the schema's immutable
        and mutable attributes respectively); used by the Figure 5
        attribute-count sweep.
    executor:
        Step-2 execution strategy: ``"serial"`` (reference), ``"thread"``,
        or ``"process"`` (chunked work-stealing across grouping patterns).
        Results are bit-for-bit identical across strategies and worker
        counts — see the determinism contract in :mod:`repro.parallel`.
    n_workers:
        Worker count for the parallel executors (``0`` = all visible CPUs;
        ignored by the serial executor).
    cache_size:
        Entry bound of the content-addressed CATE memo
        (:class:`~repro.parallel.cache.EstimationCache`); ``0`` disables
        caching.  Caching never changes results, only latency.
    batch_estimation:
        Route Step-2 lattice levels through the batched FWL estimation
        engine (:mod:`repro.causal.batch`): one GEMM per level instead of
        one OLS per candidate.  ``False`` selects the scalar per-candidate
        path — the differential reference the batch engine is tested
        against.  Only the linear-adjustment estimator has a batched path;
        other estimators ignore the flag.  Mined rulesets are identical
        either way (estimates agree to working precision; degenerate
        candidates take the scalar path bit-identically).
    bitset_masks:
        Compose Step-2 candidate masks from packed per-predicate bitsets
        (:mod:`repro.mining.bitsets`) — one AND over ``n/64`` words per
        item instead of re-evaluating predicates per candidate — and prune
        zero-support candidates by popcount *before* any estimation.
        ``False`` re-evaluates boolean masks per candidate (the
        differential reference).  Pruned candidates' results are
        synthesized exactly as estimation would reject them, so rulesets
        are bit-identical either way.  Only affects the batched path.
    frontier_batching:
        Run Step 2 as a multi-context *frontier*: level k+1 of every
        grouping-pattern context in an executor's scope is collected into
        one estimation round (:func:`repro.core.intervention.mine_interventions_frontier`),
        each sub-population's boolean stack is converted to float exactly
        once per level, and the round runs through the fused row-major
        kernel (:func:`repro.causal.batch.estimate_level_rows`).
        Estimation batches stay per (context, sub-population, adjustment
        set) and cache keys keep level granularity, so results are
        identical across executors, worker counts and chunkings
        (serial ≡ process bit-identity).  ``False`` selects the PR-3-style
        per-context engine — the differential reference; estimates agree
        to working precision (rtol 1e-9), rulesets are identical.
        Requires ``batch_estimation``; estimators without a batched path
        ignore it.
    gram_subtraction:
        Derive the larger protected/non-protected sub-population's Gram
        matrix ``WᵀW`` by subtracting the smaller side's from the parent
        subtable's memoised Gram (the two sides partition the subtable)
        instead of re-accumulating pair products —
        :func:`repro.causal.batch.build_rows_factorization`.  Guarded by
        the existing ``rcond >= 1e-3`` condition gate with QR fallback, so
        certification and the bit-exact scalar fallback are unchanged;
        results stay inside the rtol-1e-9 batch ≡ scalar contract and are
        bit-identical across executors (the donor choice is a pure
        function of the context's row split).  ``False`` selects the
        direct re-accumulation — the differential reference.
    shared_memory:
        Publish the root table's float64 design-block/Gram buffers into a
        ``multiprocessing.shared_memory`` segment before a process-pool
        run and attach it read-only in each worker
        (:mod:`repro.parallel.shm`).  Attached buffers are verbatim copies
        of what workers would rebuild, so results are bit-identical with
        the flag on or off; any attach failure falls back to the rebuild
        path (counted under ``shm.fallbacks``).  Only affects the process
        executor.
    throughput_mode:
        Merge each frontier round's estimation batches *across* grouping
        contexts into shared GEMMs and skip result-cache digests
        (:meth:`repro.rules.utility.RuleEvaluator.estimate_requests_merged`).
        Merged batch widths change per-column GEMM rounding, so this mode
        explicitly trades the serial ≡ process bit-identity contract for
        speed in the many-tiny-contexts regime; it is certified by the
        36-world scenario oracle (rtol bands + planted-ruleset recovery)
        instead of the differential suite.  Off by default; requires
        ``batch_estimation`` and ``frontier_batching``.
    max_chunk_retries:
        How many times a failed mining chunk (worker death, injected
        fault, chunk timeout) is re-executed before degrading to
        in-process serial execution (:mod:`repro.parallel.resilience`).
        Retries never change results — chunks are pure functions of
        immutable inputs, reassembled in input order.
    chunk_timeout_seconds:
        Per-chunk execution bound inside the process pool (``None`` = no
        bound).  A chunk exceeding it is retried and, once retries are
        exhausted, runs unbounded in-process so a slow chunk completes
        slowly rather than never.  Only affects the process executor.
    retry_backoff_seconds:
        Base of the deterministic (jitter-free) exponential backoff
        between chunk retries.
    checkpoint_dir:
        Directory for run-level checkpoint/resume: completed per-pattern
        Step-2 results are persisted under a content-addressed run key
        (table fingerprint + config digest + mining inputs) as they land,
        and a rerun loads them verbatim instead of remining
        (:class:`~repro.parallel.resilience.RunCheckpoint`).  Resume ≡
        fresh bit-for-bit — the files hold the pickled results
        themselves.  ``None`` (default) disables checkpointing.
    fault_plan:
        Deterministic fault-injection plan for the resilience test
        harness (:class:`~repro.parallel.resilience.FaultPlan`; a plan
        string like ``"kill:chunk=1"`` is parsed).  Faults fire in
        process-pool workers (or, for ``abort``, in the checkpointing
        driver) on exactly the planned ``(chunk, attempt)`` executions.
        Never set in production runs.
    shard_rows:
        Out-of-core mining: spill the input table into fixed-size row
        shards (:class:`~repro.datasets.sharded.ShardedTable`) before
        mining and run Step 1 / Step 2 against the sharded handle —
        packed predicate words build in one pass over the shards, Gram
        sufficient statistics merge shard by shard, and grouping-context
        sub-tables materialise by pure row gather, so mined rulesets are
        bit-identical to the in-RAM run while peak RSS stays
        O(shard + sufficient stats).  ``None`` (default) mines in RAM.
    shard_dir:
        Directory for the shard spill.  ``None`` uses a per-run temporary
        directory (removed after the run); a named directory persists and
        is *reused* on a rerun when its manifest still matches the
        table's fingerprint and ``shard_rows``.
    telemetry:
        Install a live telemetry session (:mod:`repro.obs`) for the run:
        mining counters, engine counters, and a hierarchical span trace,
        surfaced as ``FairCapResult.telemetry`` (the run-report dict the
        CLI's ``--trace-json`` writes).  Off by default with near-zero
        overhead — instrumentation sites check a no-op registry and move
        on.  Telemetry never touches numerics: mined rulesets are
        bit-identical with the flag on or off, and the deterministic
        counter family is exact across executors and worker counts (the
        observability differential obligation).
    """

    variant: ProblemVariant = field(default_factory=ProblemVariant)
    apriori_min_support: float = 0.1
    max_grouping_size: int = 3
    max_intervention_size: int = 2
    max_values_per_attribute: int | None = 8
    continuous_bins: int = 4
    significance_alpha: float | None = 0.05
    min_subgroup_size: int = 10
    estimator: str = "linear"
    lambda_size: float = 1.0
    lambda_utility: float = 1.0
    max_rules: int = 20
    stop_threshold: float = 0.01
    prune_non_causal: bool = True
    grouping_attributes: tuple[str, ...] | None = None
    intervention_attributes: tuple[str, ...] | None = None
    executor: str = "serial"
    n_workers: int = 0
    # Sized to hold the full working set of a laptop-scale experiment run
    # (a 6,000-row Table 4 variant estimates ~5-20k CATEs; entries are a few
    # hundred bytes each) so cross-variant reuse survives the LRU.
    cache_size: int = 65_536
    batch_estimation: bool = True
    bitset_masks: bool = True
    frontier_batching: bool = True
    gram_subtraction: bool = True
    shared_memory: bool = True
    throughput_mode: bool = False
    max_chunk_retries: int = 2
    chunk_timeout_seconds: float | None = None
    retry_backoff_seconds: float = 0.05
    checkpoint_dir: str | None = None
    fault_plan: FaultPlan | None = None
    shard_rows: int | None = None
    shard_dir: str | None = None
    telemetry: bool = False

    def __post_init__(self) -> None:
        if isinstance(self.fault_plan, str):
            object.__setattr__(self, "fault_plan", FaultPlan.parse(self.fault_plan))
        if self.max_chunk_retries < 0:
            raise ConfigError("max_chunk_retries must be >= 0")
        if self.chunk_timeout_seconds is not None and self.chunk_timeout_seconds <= 0:
            raise ConfigError("chunk_timeout_seconds must be > 0 or None")
        if self.retry_backoff_seconds < 0:
            raise ConfigError("retry_backoff_seconds must be >= 0")
        if not 0.0 < self.apriori_min_support <= 1.0:
            raise ConfigError("apriori_min_support must be in (0, 1]")
        if self.max_grouping_size < 1:
            raise ConfigError("max_grouping_size must be >= 1")
        if self.max_intervention_size < 1:
            raise ConfigError("max_intervention_size must be >= 1")
        if self.estimator not in ESTIMATORS:
            raise ConfigError(
                f"unknown estimator {self.estimator!r}; "
                f"choose from {sorted(ESTIMATORS)}"
            )
        if self.significance_alpha is not None and not (
            0.0 < self.significance_alpha < 1.0
        ):
            raise ConfigError("significance_alpha must be in (0, 1) or None")
        if self.lambda_size < 0 or self.lambda_utility < 0:
            raise ConfigError("objective weights must be non-negative")
        if self.max_rules < 1:
            raise ConfigError("max_rules must be >= 1")
        if self.executor not in EXECUTOR_KINDS:
            raise ConfigError(
                f"unknown executor {self.executor!r}; "
                f"choose from {list(EXECUTOR_KINDS)}"
            )
        if self.n_workers < 0:
            raise ConfigError("n_workers must be >= 0 (0 = all visible CPUs)")
        if self.cache_size < 0:
            raise ConfigError("cache_size must be >= 0 (0 disables caching)")
        if self.throughput_mode and not (
            self.batch_estimation and self.frontier_batching
        ):
            raise ConfigError(
                "throughput_mode requires batch_estimation and "
                "frontier_batching (it merges frontier rounds)"
            )
        if self.shard_rows is not None and self.shard_rows < 1:
            raise ConfigError("shard_rows must be >= 1 or None")
        if self.shard_dir is not None and self.shard_rows is None:
            raise ConfigError("shard_dir requires shard_rows")

    def make_estimator(self):
        """Instantiate the configured CATE estimator."""
        return ESTIMATORS[self.estimator]()

    def make_executor(self):
        """Instantiate the configured Step-2 executor."""
        return make_executor(self.executor, self.n_workers or None)

    def make_cache(self) -> EstimationCache | None:
        """Instantiate the CATE memo (``None`` when ``cache_size`` is 0)."""
        if self.cache_size == 0:
            return None
        return EstimationCache(self.cache_size)

    def with_variant(self, variant: ProblemVariant) -> "FairCapConfig":
        """Copy of this config solving a different problem variant."""
        return replace(self, variant=variant)

    def effective_apriori_support(self) -> float:
        """Step-1 support threshold, raised under a rule-coverage constraint.

        Sec. 5.4: "We set the Apriori's threshold to ensure that each mined
        grouping pattern covers a sufficient number of individuals when a
        rule coverage constraint is imposed."
        """
        if self.variant.has_rule_coverage:
            assert self.variant.coverage is not None
            return max(self.apriori_min_support, self.variant.coverage.theta)
        return self.apriori_min_support
