"""FairCap: fair and actionable causal prescription rulesets.

A from-scratch reproduction of *"Fair and Actionable Causal Prescription
Ruleset"* (Li, Levy, Youngmann, Galhotra, Roy; SIGMOD 2025), including every
substrate the paper depends on: a columnar table layer, Pearl-model causal
inference (backdoor adjustment, CATE estimation, PC discovery), Apriori and
lattice pattern mining, the FairCap three-step algorithm with all 18 problem
variants, the CauSumX / IDS / FRL baselines, SCM-backed synthetic datasets,
and an experiment harness regenerating every table and figure of the
evaluation.

Quickstart — mine a ruleset::

    from repro import (
        FairCap, FairCapConfig, canonical_variants, load_stackoverflow,
    )

    bundle = load_stackoverflow(n=5000, rng=0)
    variants = canonical_variants("SP", 10_000, theta=0.5, theta_protected=0.5)
    config = FairCapConfig(variant=variants["Group fairness"])
    result = FairCap(config).run(
        bundle.table, bundle.schema, bundle.dag, bundle.protected
    )
    for rule in result.ruleset:
        print(rule)

Quickstart — deploy it (:mod:`repro.serve`)::

    from repro import PrescriptionEngine, ServingArtifact

    # Persist the mined ruleset as a versioned JSON artifact ...
    artifact = ServingArtifact(
        result.ruleset, schema=bundle.schema, protected=bundle.protected
    )
    artifact.save("ruleset.json")

    # ... and answer per-individual queries against it.
    engine = PrescriptionEngine.from_artifact(ServingArtifact.load("ruleset.json"))
    prescription = engine.prescribe({"Country": "US", "Age": 31, ...})
    print(prescription.intervention, prescription.expected_utility)

    # Or over HTTP (also: python -m repro serve --artifact ruleset.json):
    # POST /prescribe {"individual": {...}} -> {"prescription": {...}}
"""

from repro.tabular import (
    AttributeKind,
    AttributeRole,
    AttributeSpec,
    Schema,
    Table,
    read_csv,
    write_csv,
)
from repro.mining import Operator, Pattern, Predicate, apriori
from repro.causal import (
    CateResult,
    CausalDAG,
    LinearAdjustmentEstimator,
    SCMNode,
    StratifiedEstimator,
    StructuralCausalModel,
    backdoor_adjustment_set,
    estimate_cate,
    pc_dag,
)
from repro.rules import (
    PrescriptionRule,
    ProtectedGroup,
    RuleSet,
    RulesetEvaluator,
    RulesetMetrics,
    RuleTemplates,
    describe_rule,
)
from repro.fairness import (
    CoverageConstraint,
    FairnessConstraint,
    bounded_group_loss,
    group_coverage,
    rule_coverage,
    select_variant,
    statistical_parity,
)
from repro.core import (
    FairCap,
    FairCapConfig,
    FairCapResult,
    ProblemVariant,
    all_variants,
    brute_force_select,
    canonical_variants,
    run_faircap,
    unconstrained,
)
from repro.baselines import run_causumx, run_frl, run_ids
from repro.datasets import load_dataset, load_german, load_stackoverflow
from repro.scenarios import (
    ScenarioSpec,
    ScenarioWorld,
    load_scenario,
    oracle_grid,
)
from repro.serve import (
    CompiledRuleIndex,
    Prescription,
    PrescriptionEngine,
    ServingArtifact,
)

__version__ = "1.0.0"

__all__ = [
    # tabular
    "Table", "Schema", "AttributeSpec", "AttributeKind", "AttributeRole",
    "read_csv", "write_csv",
    # patterns & mining
    "Pattern", "Predicate", "Operator", "apriori",
    # causal
    "CausalDAG", "CateResult", "LinearAdjustmentEstimator",
    "StratifiedEstimator", "estimate_cate", "backdoor_adjustment_set",
    "pc_dag", "StructuralCausalModel", "SCMNode",
    # rules
    "PrescriptionRule", "RuleSet", "RulesetEvaluator", "RulesetMetrics",
    "ProtectedGroup", "RuleTemplates", "describe_rule",
    # fairness
    "FairnessConstraint", "CoverageConstraint", "statistical_parity",
    "bounded_group_loss", "group_coverage", "rule_coverage", "select_variant",
    # core
    "FairCap", "FairCapConfig", "FairCapResult", "ProblemVariant",
    "canonical_variants", "all_variants", "unconstrained", "run_faircap",
    "brute_force_select",
    # baselines
    "run_causumx", "run_ids", "run_frl",
    # datasets
    "load_stackoverflow", "load_german", "load_dataset",
    # scenarios (ground-truth oracle worlds)
    "ScenarioSpec", "ScenarioWorld", "oracle_grid", "load_scenario",
    # serving
    "ServingArtifact", "CompiledRuleIndex", "PrescriptionEngine",
    "Prescription",
    "__version__",
]
