"""Typed request/response schemas and the uniform error envelope of /v1.

The router parses request bodies into frozen dataclasses
(:class:`PrescribeRequest`, :class:`ActivateRequest`) and the service layer
answers with response dataclasses (:class:`PrescribeResponse`,
:class:`HealthResponse`, ...), each serializing through ``to_payload()``.
Validation failures raise :class:`ApiError`, which carries the HTTP status
and a stable machine-readable ``code``; the transport renders every error —
client mistake, capacity rejection, deadline, crash — as one envelope shape:

.. code-block:: json

    {"error": {"code": "bad_request", "message": "...", "request_id": "..."}}

Codes are part of the API contract (``docs/serving.md``):

========================  ======  ==============================================
code                      status  meaning
========================  ======  ==============================================
``bad_request``           400     malformed body, missing/untyped attributes
``not_found``             404     unknown path or artifact version
``method_not_allowed``    405     known path, wrong HTTP method
``artifact_invalid``      409     torn/partial/unparseable artifact rejected
``over_capacity``         503     concurrency gate closed (``Retry-After``)
``draining``              503     graceful shutdown in progress (``Retry-After``)
``deadline_exceeded``     504     request ran past its deadline
``internal``              500     unexpected server failure
========================  ======  ==============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.utils.errors import ServeError


class ApiError(ServeError):
    """An HTTP-mappable service error: status + stable code + message."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = int(status)
        self.code = str(code)

    @classmethod
    def bad_request(cls, message: str) -> "ApiError":
        return cls(400, "bad_request", message)

    @classmethod
    def not_found(cls, message: str) -> "ApiError":
        return cls(404, "not_found", message)

    @classmethod
    def conflict(cls, message: str) -> "ApiError":
        return cls(409, "artifact_invalid", message)


def error_envelope(code: str, message: str, request_id: str | None) -> dict:
    """The uniform JSON error body every non-2xx response carries."""
    return {
        "error": {
            "code": code,
            "message": message,
            "request_id": request_id,
        }
    }


# -- requests --------------------------------------------------------------------


@dataclass(frozen=True)
class PrescribeRequest:
    """Parsed body of ``POST /v1/prescribe``.

    Exactly one of ``individual`` (single profile) or ``individuals``
    (client-side batch) is set.
    """

    individual: Mapping[str, object] | None = None
    individuals: tuple[Mapping[str, object], ...] | None = None

    @classmethod
    def parse(cls, payload: object) -> "PrescribeRequest":
        if not isinstance(payload, Mapping):
            raise ApiError.bad_request("request body must be a JSON object")
        if "individual" in payload:
            individual = payload["individual"]
            if not isinstance(individual, Mapping):
                raise ApiError.bad_request("'individual' must be a JSON object")
            return cls(individual=individual)
        if "individuals" in payload:
            individuals = payload["individuals"]
            if not isinstance(individuals, list) or not all(
                isinstance(i, Mapping) for i in individuals
            ):
                raise ApiError.bad_request(
                    "'individuals' must be a list of JSON objects"
                )
            return cls(individuals=tuple(individuals))
        raise ApiError.bad_request(
            "request must contain 'individual' or 'individuals'"
        )


@dataclass(frozen=True)
class ActivateRequest:
    """Parsed body of ``POST /v1/artifacts/activate``.

    ``version`` selects the artifact to activate; ``rollback=True`` (with
    no version) re-activates the previously active version instead.
    """

    version: int | None = None
    rollback: bool = False

    @classmethod
    def parse(cls, payload: object) -> "ActivateRequest":
        if not isinstance(payload, Mapping):
            raise ApiError.bad_request("request body must be a JSON object")
        rollback = bool(payload.get("rollback", False))
        version = payload.get("version")
        if rollback:
            if version is not None:
                raise ApiError.bad_request(
                    "'rollback' and 'version' are mutually exclusive"
                )
            return cls(rollback=True)
        if not isinstance(version, int) or isinstance(version, bool):
            raise ApiError.bad_request("'version' must be an integer")
        return cls(version=version)


# -- responses -------------------------------------------------------------------


@dataclass(frozen=True)
class PrescriptionPayload:
    """One resolved prescription (the engine's answer, JSON-ready)."""

    rule_index: int | None
    matched_rules: tuple[int, ...]
    expected_utility: float
    protected: bool | None
    intervention: tuple[dict, ...]

    def to_payload(self) -> dict:
        return {
            "rule_index": self.rule_index,
            "matched_rules": list(self.matched_rules),
            "expected_utility": self.expected_utility,
            "protected": self.protected,
            "intervention": list(self.intervention),
        }


@dataclass(frozen=True)
class PrescribeResponse:
    """``POST /v1/prescribe`` with a single ``individual``."""

    prescription: PrescriptionPayload
    ruleset_version: int | None

    def to_payload(self) -> dict:
        return {
            "prescription": self.prescription.to_payload(),
            "ruleset_version": self.ruleset_version,
        }


@dataclass(frozen=True)
class BatchPrescribeResponse:
    """``POST /v1/prescribe`` with an ``individuals`` batch."""

    prescriptions: tuple[PrescriptionPayload, ...]
    ruleset_version: int | None

    def to_payload(self) -> dict:
        return {
            "count": len(self.prescriptions),
            "prescriptions": [p.to_payload() for p in self.prescriptions],
            "ruleset_version": self.ruleset_version,
        }


@dataclass(frozen=True)
class RulesResponse:
    """``GET /v1/rules``: the served ruleset in artifact rule format."""

    rules: tuple[dict, ...]
    ruleset_version: int | None

    def to_payload(self) -> dict:
        return {
            "n_rules": len(self.rules),
            "rules": list(self.rules),
            "ruleset_version": self.ruleset_version,
        }


@dataclass(frozen=True)
class HealthResponse:
    """``GET /v1/health``: liveness plus serving-state summary."""

    status: str
    n_rules: int
    draining: bool
    cache: Mapping[str, int]
    ruleset_version: int | None

    def to_payload(self) -> dict:
        return {
            "status": self.status,
            "n_rules": self.n_rules,
            "draining": self.draining,
            "cache": dict(self.cache),
            "ruleset_version": self.ruleset_version,
        }


@dataclass(frozen=True)
class ArtifactInfo:
    """One registry entry in ``GET /v1/artifacts``."""

    version: int
    active: bool
    size_bytes: int
    metadata: Mapping[str, object] = field(default_factory=dict)

    def to_payload(self) -> dict:
        return {
            "version": self.version,
            "active": self.active,
            "size_bytes": self.size_bytes,
            "metadata": dict(self.metadata),
        }


@dataclass(frozen=True)
class ArtifactsResponse:
    """``GET /v1/artifacts``: registry listing + the active version."""

    artifacts: tuple[ArtifactInfo, ...]
    active_version: int | None
    registry: bool

    def to_payload(self) -> dict:
        return {
            "artifacts": [a.to_payload() for a in self.artifacts],
            "active_version": self.active_version,
            "registry": self.registry,
        }


@dataclass(frozen=True)
class ActivateResponse:
    """``POST /v1/artifacts/activate``: the completed swap."""

    active_version: int
    previous_version: int | None
    n_rules: int

    def to_payload(self) -> dict:
        return {
            "active_version": self.active_version,
            "previous_version": self.previous_version,
            "n_rules": self.n_rules,
        }


def prescription_payload(prescription) -> PrescriptionPayload:
    """Adapt a :class:`~repro.serve.engine.Prescription` to the API schema."""
    return PrescriptionPayload(
        rule_index=prescription.rule_index,
        matched_rules=prescription.matched_rules,
        expected_utility=prescription.expected_utility,
        protected=prescription.protected,
        intervention=prescription.intervention,
    )
