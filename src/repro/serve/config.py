"""Serving-tier configuration: one frozen dataclass instead of kwarg sprawl.

:class:`ServeConfig` gathers every tunable of the production serving tier —
bind address, worker-pool width, request batching, backpressure, deadlines,
artifact registry location — the way :class:`~repro.core.config.FairCapConfig`
gathers the mining tunables: a frozen dataclass validated on construction,
with a :meth:`ServeConfig.validate` that re-checks an instance built through
:func:`dataclasses.replace`.

Environment variables (``REPRO_SERVE_*``) provide deployment-time defaults
the CLI flags override, mirroring how :class:`ExperimentSettings` reads
``REPRO_WORKERS``/``REPRO_EXECUTOR`` for the mining side::

    REPRO_SERVE_HOST / REPRO_SERVE_PORT        bind address
    REPRO_SERVE_WORKERS                        request worker threads
    REPRO_SERVE_MAX_CONCURRENCY                in-flight bound (0 = unbounded)
    REPRO_SERVE_DEADLINE_MS                    default request deadline
    REPRO_SERVE_BATCH_WINDOW_MS                micro-batch coalescing window
    REPRO_SERVE_BATCH_MAX                      micro-batch size cap
    REPRO_SERVE_CACHE_SIZE                     profile LRU entries
    REPRO_SERVE_ARTIFACT_DIR                   versioned artifact registry
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.utils.errors import ServeError


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ServeError(f"{name} must be an integer, got {raw!r}") from None


def _env_float(name: str, default: float | None) -> float | None:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ServeError(f"{name} must be a number, got {raw!r}") from None


@dataclass(frozen=True)
class ServeConfig:
    """All tunables of the prescription serving tier.

    Attributes
    ----------
    host, port:
        Bind address (``port=0`` picks an ephemeral port — the tests and
        the load benchmark do this).
    workers:
        Size of the request worker pool behind the accept loop.  Each
        live connection occupies one worker for its lifetime, so this
        bounds *connection* concurrency; ``max_concurrency`` bounds
        admitted *request* concurrency below it.
    max_concurrency:
        At most this many requests execute at once; excess requests are
        rejected immediately with 503 + ``Retry-After`` (``None`` =
        unbounded).  Ops endpoints (health, metrics) bypass the gate.
    request_deadline_seconds:
        Default per-request wall-clock budget; a request past it answers
        504.  A client's ``X-Request-Deadline-Ms`` header tightens (never
        loosens) this.  ``None`` = no server-side default.
    drain_timeout_seconds:
        How long a graceful shutdown waits for in-flight requests.
    batch_window_ms:
        Micro-batching: concurrent single-individual ``/v1/prescribe``
        requests arriving within this window are coalesced into one
        vectorized :class:`~repro.serve.index.CompiledRuleIndex` batch
        match (``0`` disables coalescing — every request dispatches
        immediately).  Coalescing never changes answers, only amortizes
        per-request matching overhead.
    batch_max_size:
        Cap on how many coalesced requests one batch may hold; a full
        batch dispatches before the window closes.
    cache_size:
        Profile-LRU entries for engines the tier builds from artifacts
        (``0`` disables the cache).
    artifact_dir:
        Root of the versioned artifact registry
        (:class:`~repro.serve.registry.ArtifactRegistry`).  ``None`` runs
        in single-artifact mode: the engine handed to the server is the
        only version and ``/v1/artifacts`` reports it read-only.
    quiet:
        Suppress the structured JSON access log.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    workers: int = 8
    max_concurrency: int | None = 64
    request_deadline_seconds: float | None = None
    drain_timeout_seconds: float = 10.0
    batch_window_ms: float = 0.0
    batch_max_size: int = 64
    cache_size: int = 1024
    artifact_dir: str | None = None
    quiet: bool = True

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`~repro.utils.errors.ServeError` on invalid settings."""
        if not self.host:
            raise ServeError("host must be non-empty")
        if not 0 <= self.port <= 65535:
            raise ServeError("port must be in [0, 65535]")
        if self.workers < 1:
            raise ServeError("workers must be >= 1")
        if self.max_concurrency is not None and self.max_concurrency < 1:
            raise ServeError("max_concurrency must be >= 1 or None")
        if (
            self.request_deadline_seconds is not None
            and self.request_deadline_seconds <= 0
        ):
            raise ServeError("request_deadline_seconds must be > 0 or None")
        if self.drain_timeout_seconds <= 0:
            raise ServeError("drain_timeout_seconds must be > 0")
        if self.batch_window_ms < 0:
            raise ServeError("batch_window_ms must be >= 0")
        if self.batch_max_size < 1:
            raise ServeError("batch_max_size must be >= 1")
        if self.cache_size < 0:
            raise ServeError("cache_size must be >= 0")

    @classmethod
    def from_environment(cls) -> "ServeConfig":
        """Defaults overridden by ``REPRO_SERVE_*`` environment variables."""
        base = cls()
        max_concurrency = _env_int(
            "REPRO_SERVE_MAX_CONCURRENCY", base.max_concurrency or 0
        )
        deadline_ms = _env_float("REPRO_SERVE_DEADLINE_MS", None)
        return cls(
            host=os.environ.get("REPRO_SERVE_HOST", base.host),
            port=_env_int("REPRO_SERVE_PORT", base.port),
            workers=_env_int("REPRO_SERVE_WORKERS", base.workers),
            max_concurrency=max_concurrency or None,
            request_deadline_seconds=(
                deadline_ms / 1e3
                if deadline_ms
                else base.request_deadline_seconds
            ),
            batch_window_ms=_env_float(
                "REPRO_SERVE_BATCH_WINDOW_MS", base.batch_window_ms
            )
            or 0.0,
            batch_max_size=_env_int("REPRO_SERVE_BATCH_MAX", base.batch_max_size),
            cache_size=_env_int("REPRO_SERVE_CACHE_SIZE", base.cache_size),
            artifact_dir=os.environ.get("REPRO_SERVE_ARTIFACT_DIR", None),
        )

    def with_overrides(self, **overrides: object) -> "ServeConfig":
        """A copy with ``overrides`` applied (unknown names raise)."""
        known = self.__dataclass_fields__
        unknown = sorted(set(overrides) - set(known))
        if unknown:
            raise ServeError(f"unknown ServeConfig fields: {unknown}")
        return replace(self, **overrides)  # type: ignore[arg-type]
