"""Stdlib HTTP JSON API over a :class:`PrescriptionEngine`.

Built on :class:`http.server.ThreadingHTTPServer` — zero dependencies, one
thread per connection, shared engine.  Requests run concurrently: the
engine's matching structures are immutable after construction and its LRU
cache synchronizes internally, so no request-level lock is needed.
Endpoints:

- ``GET  /health``     — liveness plus rule count and cache statistics;
- ``GET  /rules``      — the served ruleset as JSON (artifact rule format);
- ``GET  /metrics``    — Prometheus text exposition: request counters,
  latency histograms, and engine cache gauges sampled at scrape time;
- ``POST /prescribe``  — ``{"individual": {...}}`` for one profile, or
  ``{"individuals": [{...}, ...]}`` for a batch; responds with the
  corresponding ``prescription`` / ``prescriptions`` payloads.

Client errors (bad JSON, missing attributes, unknown paths) map to 400/404
with a ``{"error": ...}`` body; unexpected failures map to 500.

Production behaviours (the resilience tier):

- *Backpressure*: at most ``max_concurrency`` requests run at once;
  excess requests are rejected immediately with 503 + ``Retry-After``
  (``http.backpressure_rejections``).  ``/health`` and ``/metrics`` bypass
  the gate — operators need them most exactly when the gate is closed.
- *Deadlines*: ``request_deadline_seconds`` (or a per-request
  ``X-Request-Deadline-Ms`` header, whichever is tighter) bounds request
  wall-clock; batch prescriptions check between individuals and a late
  request gets 504 (``http.deadline_exceeded``).
- *Graceful shutdown*: SIGTERM (via :func:`run_server`) stops accepting,
  rejects new requests with 503, and drains in-flight requests before the
  socket closes.
- *Client disconnects*: a peer closing mid-response is counted as
  ``http.client_disconnects`` — not a spurious 500 — and no error
  response is attempted on the dead socket.

Every response carries an ``X-Request-Id`` header (echoing the request's
own when present) and a matching ``request_id`` field in the JSON body, and
each request emits one structured JSON access-log line to stderr unless the
server is ``quiet`` — the id correlates the two.

Start a server programmatically with :func:`make_server` (port 0 picks an
ephemeral port — the tests do this) or from the CLI::

    python -m repro serve --artifact ruleset.json --port 8080
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs import MetricsRegistry, StructuredLogger, new_request_id, render_prometheus
from repro.serve.artifact import rule_to_dict
from repro.serve.engine import PrescriptionEngine
from repro.utils.errors import ReproError, ServeError

MAX_BODY_BYTES = 8 * 1024 * 1024  # refuse absurd request bodies early

#: Routes that get their own ``path`` label; anything else is folded into
#: ``other`` so arbitrary scanned paths cannot blow up label cardinality.
_KNOWN_PATHS = frozenset({"/health", "/rules", "/metrics", "/prescribe"})

_HELP_TEXTS = {
    "http.requests": "HTTP requests served, by method/path/status.",
    "http.request_seconds": "Request wall-clock latency in seconds.",
    "http.backpressure_rejections": "Requests rejected with 503, by reason.",
    "http.deadline_exceeded": "Requests aborted with 504 past their deadline.",
    "http.client_disconnects": "Requests whose peer hung up mid-response.",
    "engine.cache.hits": "Prescription-engine LRU hits since start.",
    "engine.cache.misses": "Prescription-engine LRU misses since start.",
    "engine.cache.size": "Prescription-engine LRU entries right now.",
    "engine.rules": "Rules loaded in the serving ruleset.",
}


class _DeadlineExceeded(Exception):
    """Internal: a request ran past its deadline (mapped to 504)."""


class PrescriptionServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one prescription engine."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        engine: PrescriptionEngine,
        quiet: bool = True,
        log_stream=None,
        max_concurrency: int | None = 64,
        request_deadline_seconds: float | None = None,
    ) -> None:
        super().__init__(address, PrescriptionRequestHandler)
        self.engine = engine
        self.quiet = quiet
        self.metrics = MetricsRegistry()
        self.logger = StructuredLogger(
            stream=log_stream, enabled=not quiet, component="serve"
        )
        self._rules_payload = [rule_to_dict(r) for r in engine.ruleset]
        if max_concurrency is not None and max_concurrency < 1:
            raise ServeError("max_concurrency must be >= 1 or None")
        if request_deadline_seconds is not None and request_deadline_seconds <= 0:
            raise ServeError("request_deadline_seconds must be > 0 or None")
        self.request_deadline_seconds = request_deadline_seconds
        self._gate = (
            threading.BoundedSemaphore(max_concurrency)
            if max_concurrency is not None
            else None
        )
        self.draining = False
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._shutdown_started = False

    # -- resilience plumbing ----------------------------------------------------

    def try_acquire_slot(self) -> bool:
        """One unit of the bounded-concurrency gate (non-blocking)."""
        if self._gate is None:
            return True
        return self._gate.acquire(blocking=False)

    def release_slot(self) -> None:
        if self._gate is not None:
            self._gate.release()

    def track_request(self, delta: int) -> None:
        with self._inflight_lock:
            self._inflight += delta

    @property
    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    def begin_graceful_shutdown(self, drain_timeout: float = 10.0) -> None:
        """Reject new requests with 503, drain in-flight ones, then stop.

        The accept loop keeps running through the drain — a stopped loop
        would leave freshly-connected peers hanging in the TCP backlog
        with no response at all, which is worse than an honest 503.  Safe
        to call from a signal handler (``shutdown()`` blocks until the
        accept loop exits, so the sequence runs on a helper thread) and
        idempotent.
        """
        if self._shutdown_started:
            return
        self._shutdown_started = True
        self.draining = True

        def _drain_then_stop() -> None:
            self.drain(timeout=drain_timeout)
            self.shutdown()

        threading.Thread(target=_drain_then_stop, daemon=True).start()

    def drain(self, timeout: float = 10.0) -> bool:
        """Wait until no request is in flight; ``False`` on timeout."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.inflight == 0:
                return True
            time.sleep(0.02)
        return self.inflight == 0

    def handle_error(self, request, client_address) -> None:
        # A peer that hangs up mid-response surfaces here when the write
        # fails outside the handler's own try (e.g. the keep-alive flush);
        # count it instead of spraying a traceback to stderr.
        import sys

        exc = sys.exc_info()[1]
        if isinstance(exc, (BrokenPipeError, ConnectionResetError)):
            self.metrics.inc("http.client_disconnects", 1, stage="connection")
            return
        self.logger.log(
            "http.error", error=repr(exc), client=str(client_address)
        )

    def render_metrics(self) -> str:
        """The /metrics document: request metrics + live engine gauges."""
        info = self.engine.cache_info()
        self.metrics.set_gauge("engine.cache.hits", info["hits"])
        self.metrics.set_gauge("engine.cache.misses", info["misses"])
        self.metrics.set_gauge("engine.cache.size", info["size"])
        self.metrics.set_gauge("engine.rules", len(self.engine.ruleset))
        return render_prometheus(self.metrics.snapshot(), help_texts=_HELP_TEXTS)

    @property
    def port(self) -> int:
        """The bound port (useful when constructed with port 0)."""
        return int(self.server_address[1])


class PrescriptionRequestHandler(BaseHTTPRequestHandler):
    """Routes /health, /rules and /prescribe to the server's engine."""

    server: PrescriptionServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ---------------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        # BaseHTTPRequestHandler funnels its own diagnostics (parse errors,
        # log_request) through here; route them to the structured logger so
        # quiet mode and the JSON-lines format are honored uniformly.
        self.server.logger.log(
            "http.message",
            message=format % args,
            client=self.address_string(),
            request_id=getattr(self, "_request_id", None),
        )

    def log_request(self, code: object = "-", size: object = "-") -> None:
        # Replaced by the access-log line in _finish_request (which carries
        # the request id and latency); suppress the default per-response log.
        pass

    def _send_json(
        self, status: int, payload: dict, headers: dict | None = None
    ) -> None:
        request_id = getattr(self, "_request_id", None)
        if request_id is not None and "request_id" not in payload:
            payload = {**payload, "request_id": request_id}
        body = json.dumps(payload).encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        if request_id is not None:
            self.send_header("X-Request-Id", request_id)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _begin_request(self) -> None:
        self._started = time.perf_counter()
        self._status = 0
        self._request_id = self.headers.get("X-Request-Id") or new_request_id()
        self._client_disconnected = False
        self._slot_held = False
        self.server.track_request(1)
        deadline = self.server.request_deadline_seconds
        header = self.headers.get("X-Request-Deadline-Ms")
        if header is not None:
            try:
                requested = float(header) / 1e3
            except ValueError:
                requested = None
            if requested is not None and requested > 0:
                deadline = (
                    requested if deadline is None else min(deadline, requested)
                )
        self._deadline = None if deadline is None else self._started + deadline

    def _check_deadline(self) -> None:
        if (
            self._deadline is not None
            and time.perf_counter() > self._deadline
        ):
            raise _DeadlineExceeded()

    def _admit(self) -> bool:
        """Backpressure + drain gate; ops endpoints always pass.

        Returns False after sending the 503 itself — the caller just
        returns.  A held slot is released in ``_finish_request``.
        """
        server = self.server
        if self.path in ("/health", "/metrics"):
            return True
        if server.draining:
            self.close_connection = True
            server.metrics.inc("http.backpressure_rejections", 1, reason="draining")
            self._send_json(
                503,
                {"error": "server is shutting down"},
                headers={"Retry-After": 1},
            )
            return False
        if not server.try_acquire_slot():
            server.metrics.inc("http.backpressure_rejections", 1, reason="capacity")
            self._send_json(
                503,
                {"error": "server at capacity"},
                headers={"Retry-After": 1},
            )
            return False
        self._slot_held = True
        return True

    def _finish_request(self, method: str) -> None:
        duration = time.perf_counter() - self._started
        path = self.path if self.path in _KNOWN_PATHS else "other"
        server = self.server
        if self._slot_held:
            server.release_slot()
        server.track_request(-1)
        metrics = server.metrics
        if self._client_disconnected:
            # The peer hung up mid-response: there is no meaningful status
            # to record (and recording a 500 would page someone for a
            # client-side event); count the disconnect instead.
            metrics.inc("http.client_disconnects", 1, method=method, path=path)
            server.logger.log(
                "http.client_disconnect",
                request_id=self._request_id,
                method=method,
                path=self.path,
                duration_ms=round(duration * 1e3, 3),
                client=self.address_string(),
            )
            return
        metrics.inc(
            "http.requests", 1, method=method, path=path, status=self._status
        )
        metrics.observe("http.request_seconds", duration, method=method, path=path)
        server.logger.log(
            "http.request",
            request_id=self._request_id,
            method=method,
            path=self.path,
            status=self._status,
            duration_ms=round(duration * 1e3, 3),
            client=self.address_string(),
        )

    def _read_json_body(self) -> object:
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            self.close_connection = True  # body length unknown: cannot drain
            raise ServeError("Content-Length header is not an integer") from None
        if length <= 0:
            raise ServeError("request body is empty")
        if length > MAX_BODY_BYTES:
            self.close_connection = True  # body left unread on the socket
            raise ServeError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        # rfile wraps a socket: one read may legally return fewer than
        # ``length`` bytes (e.g. the body arrives in several TCP segments).
        # Loop until the declared length is in hand; a premature EOF means
        # the peer hung up mid-body, so the connection cannot be reused.
        chunks = []
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(remaining)
            if not chunk:
                self.close_connection = True
                raise ServeError(
                    f"request body truncated: expected {length} bytes, "
                    f"got {length - remaining}"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        raw = b"".join(chunks)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServeError(f"request body is not valid JSON: {exc}") from None

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        if getattr(self, "_request_id", None) is not None:
            self.send_header("X-Request-Id", self._request_id)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    # -- routes ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._begin_request()
        try:
            try:
                if not self._admit():
                    return
                if self.path == "/health":
                    engine = self.server.engine
                    self._send_json(
                        200,
                        {
                            "status": "ok",
                            "n_rules": len(engine.ruleset),
                            "draining": self.server.draining,
                            "cache": engine.cache_info(),
                        },
                    )
                elif self.path == "/rules":
                    self._check_deadline()
                    self._send_json(
                        200,
                        {
                            "n_rules": len(self.server._rules_payload),
                            "rules": self.server._rules_payload,
                        },
                    )
                elif self.path == "/metrics":
                    self._send_text(200, self.server.render_metrics())
                else:
                    self._send_json(404, {"error": f"unknown path {self.path!r}"})
            except (BrokenPipeError, ConnectionResetError):
                raise  # the outer handler owns disconnects, not the 500 path
            except _DeadlineExceeded:
                self._send_deadline_exceeded("GET")
            except ReproError as exc:
                self._send_json(400, {"error": str(exc)})
            except Exception as exc:
                # Without this, a crashed route escapes to http.server: the
                # client gets no response while the metric/access-log record
                # status=0.  Mirror do_POST's JSON fallback instead.
                self._send_json(500, {"error": f"internal error: {exc}"})
        except (BrokenPipeError, ConnectionResetError):
            self._client_disconnected = True
            self.close_connection = True
        finally:
            self._finish_request("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._begin_request()
        try:
            if not self._admit():
                return
            if self.path != "/prescribe":
                # The request body is never read on this path; close the
                # connection so leftover bytes cannot corrupt a
                # keep-alive peer.
                self.close_connection = True
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
                return
            try:
                payload = self._read_json_body()
                self._send_json(200, self._prescribe(payload))
            except (BrokenPipeError, ConnectionResetError):
                raise  # the outer handler owns disconnects, not the 500 path
            except _DeadlineExceeded:
                self._send_deadline_exceeded("POST")
            except ReproError as exc:
                self._send_json(400, {"error": str(exc)})
            except Exception as exc:  # pragma: no cover - defensive
                self._send_json(500, {"error": f"internal error: {exc}"})
        except (BrokenPipeError, ConnectionResetError):
            self._client_disconnected = True
            self.close_connection = True
        finally:
            self._finish_request("POST")

    def _send_deadline_exceeded(self, method: str) -> None:
        path = self.path if self.path in _KNOWN_PATHS else "other"
        self.server.metrics.inc(
            "http.deadline_exceeded", 1, method=method, path=path
        )
        self.close_connection = True  # the peer has likely given up waiting
        self._send_json(504, {"error": "request deadline exceeded"})

    def _prescribe(self, payload: object) -> dict:
        self._check_deadline()
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        engine = self.server.engine
        if "individual" in payload:
            individual = payload["individual"]
            if not isinstance(individual, dict):
                raise ServeError("'individual' must be a JSON object")
            return {"prescription": engine.prescribe(individual).to_dict()}
        if "individuals" in payload:
            individuals = payload["individuals"]
            if not isinstance(individuals, list) or not all(
                isinstance(i, dict) for i in individuals
            ):
                raise ServeError("'individuals' must be a list of JSON objects")
            if self._deadline is None:
                prescriptions = engine.prescribe_batch(individuals)
            else:
                # Same loop prescribe_batch runs, with a deadline check
                # between individuals: a huge batch cannot blow through
                # the request budget unbounded.
                prescriptions = []
                for individual in individuals:
                    self._check_deadline()
                    prescriptions.append(engine.prescribe(individual))
            return {
                "count": len(prescriptions),
                "prescriptions": [p.to_dict() for p in prescriptions],
            }
        raise ServeError("request must contain 'individual' or 'individuals'")


def make_server(
    engine: PrescriptionEngine,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = True,
    log_stream=None,
    max_concurrency: int | None = 64,
    request_deadline_seconds: float | None = None,
) -> PrescriptionServer:
    """Bind a :class:`PrescriptionServer` (``port=0`` picks a free port).

    ``log_stream`` redirects the structured access log (stderr by default);
    the tests pass a ``StringIO`` to assert on the emitted JSON lines.
    """
    return PrescriptionServer(
        (host, port),
        engine,
        quiet=quiet,
        log_stream=log_stream,
        max_concurrency=max_concurrency,
        request_deadline_seconds=request_deadline_seconds,
    )


def run_server(
    engine: PrescriptionEngine,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = False,
    max_concurrency: int | None = 64,
    request_deadline_seconds: float | None = None,
    drain_timeout_seconds: float = 10.0,
) -> None:
    """Serve until interrupted (the blocking path behind the CLI).

    SIGTERM triggers a graceful shutdown: the accept loop stops, new
    requests are rejected with 503, and in-flight requests get up to
    ``drain_timeout_seconds`` to finish before the socket closes — the
    contract a rolling deploy or an orchestrator's preStop hook expects.
    """
    server = make_server(
        engine,
        host,
        port,
        quiet=quiet,
        max_concurrency=max_concurrency,
        request_deadline_seconds=request_deadline_seconds,
    )
    print(
        f"serving {len(engine.ruleset)} prescription rules "
        f"on http://{host}:{server.port} (Ctrl-C to stop)"
    )

    def _on_sigterm(signum, frame):  # pragma: no cover - signal path
        server.begin_graceful_shutdown(drain_timeout=drain_timeout_seconds)

    try:
        previous = signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:  # pragma: no cover - non-main thread (tests)
        previous = None
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        server.draining = True
    finally:
        drained = server.drain(timeout=drain_timeout_seconds)
        if not drained:  # pragma: no cover - only on a wedged handler
            server.logger.log(
                "http.drain_timeout", inflight=server.inflight
            )
        server.server_close()
        if previous is not None:
            try:
                signal.signal(signal.SIGTERM, previous)
            except ValueError:  # pragma: no cover
                pass
