"""Stdlib HTTP JSON API over a :class:`PrescriptionEngine`.

Built on :class:`http.server.ThreadingHTTPServer` — zero dependencies, one
thread per connection, shared engine.  Requests run concurrently: the
engine's matching structures are immutable after construction and its LRU
cache synchronizes internally, so no request-level lock is needed.
Endpoints:

- ``GET  /health``     — liveness plus rule count and cache statistics;
- ``GET  /rules``      — the served ruleset as JSON (artifact rule format);
- ``GET  /metrics``    — Prometheus text exposition: request counters,
  latency histograms, and engine cache gauges sampled at scrape time;
- ``POST /prescribe``  — ``{"individual": {...}}`` for one profile, or
  ``{"individuals": [{...}, ...]}`` for a batch; responds with the
  corresponding ``prescription`` / ``prescriptions`` payloads.

Client errors (bad JSON, missing attributes, unknown paths) map to 400/404
with a ``{"error": ...}`` body; unexpected failures map to 500.

Every response carries an ``X-Request-Id`` header (echoing the request's
own when present) and a matching ``request_id`` field in the JSON body, and
each request emits one structured JSON access-log line to stderr unless the
server is ``quiet`` — the id correlates the two.

Start a server programmatically with :func:`make_server` (port 0 picks an
ephemeral port — the tests do this) or from the CLI::

    python -m repro serve --artifact ruleset.json --port 8080
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs import MetricsRegistry, StructuredLogger, new_request_id, render_prometheus
from repro.serve.artifact import rule_to_dict
from repro.serve.engine import PrescriptionEngine
from repro.utils.errors import ReproError, ServeError

MAX_BODY_BYTES = 8 * 1024 * 1024  # refuse absurd request bodies early

#: Routes that get their own ``path`` label; anything else is folded into
#: ``other`` so arbitrary scanned paths cannot blow up label cardinality.
_KNOWN_PATHS = frozenset({"/health", "/rules", "/metrics", "/prescribe"})

_HELP_TEXTS = {
    "http.requests": "HTTP requests served, by method/path/status.",
    "http.request_seconds": "Request wall-clock latency in seconds.",
    "engine.cache.hits": "Prescription-engine LRU hits since start.",
    "engine.cache.misses": "Prescription-engine LRU misses since start.",
    "engine.cache.size": "Prescription-engine LRU entries right now.",
    "engine.rules": "Rules loaded in the serving ruleset.",
}


class PrescriptionServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one prescription engine."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        engine: PrescriptionEngine,
        quiet: bool = True,
        log_stream=None,
    ) -> None:
        super().__init__(address, PrescriptionRequestHandler)
        self.engine = engine
        self.quiet = quiet
        self.metrics = MetricsRegistry()
        self.logger = StructuredLogger(
            stream=log_stream, enabled=not quiet, component="serve"
        )
        self._rules_payload = [rule_to_dict(r) for r in engine.ruleset]

    def render_metrics(self) -> str:
        """The /metrics document: request metrics + live engine gauges."""
        info = self.engine.cache_info()
        self.metrics.set_gauge("engine.cache.hits", info["hits"])
        self.metrics.set_gauge("engine.cache.misses", info["misses"])
        self.metrics.set_gauge("engine.cache.size", info["size"])
        self.metrics.set_gauge("engine.rules", len(self.engine.ruleset))
        return render_prometheus(self.metrics.snapshot(), help_texts=_HELP_TEXTS)

    @property
    def port(self) -> int:
        """The bound port (useful when constructed with port 0)."""
        return int(self.server_address[1])


class PrescriptionRequestHandler(BaseHTTPRequestHandler):
    """Routes /health, /rules and /prescribe to the server's engine."""

    server: PrescriptionServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ---------------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        # BaseHTTPRequestHandler funnels its own diagnostics (parse errors,
        # log_request) through here; route them to the structured logger so
        # quiet mode and the JSON-lines format are honored uniformly.
        self.server.logger.log(
            "http.message",
            message=format % args,
            client=self.address_string(),
            request_id=getattr(self, "_request_id", None),
        )

    def log_request(self, code: object = "-", size: object = "-") -> None:
        # Replaced by the access-log line in _finish_request (which carries
        # the request id and latency); suppress the default per-response log.
        pass

    def _send_json(self, status: int, payload: dict) -> None:
        request_id = getattr(self, "_request_id", None)
        if request_id is not None and "request_id" not in payload:
            payload = {**payload, "request_id": request_id}
        body = json.dumps(payload).encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if request_id is not None:
            self.send_header("X-Request-Id", request_id)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _begin_request(self) -> None:
        self._started = time.perf_counter()
        self._status = 0
        self._request_id = self.headers.get("X-Request-Id") or new_request_id()

    def _finish_request(self, method: str) -> None:
        duration = time.perf_counter() - self._started
        path = self.path if self.path in _KNOWN_PATHS else "other"
        metrics = self.server.metrics
        metrics.inc(
            "http.requests", 1, method=method, path=path, status=self._status
        )
        metrics.observe("http.request_seconds", duration, method=method, path=path)
        self.server.logger.log(
            "http.request",
            request_id=self._request_id,
            method=method,
            path=self.path,
            status=self._status,
            duration_ms=round(duration * 1e3, 3),
            client=self.address_string(),
        )

    def _read_json_body(self) -> object:
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            self.close_connection = True  # body length unknown: cannot drain
            raise ServeError("Content-Length header is not an integer") from None
        if length <= 0:
            raise ServeError("request body is empty")
        if length > MAX_BODY_BYTES:
            self.close_connection = True  # body left unread on the socket
            raise ServeError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        # rfile wraps a socket: one read may legally return fewer than
        # ``length`` bytes (e.g. the body arrives in several TCP segments).
        # Loop until the declared length is in hand; a premature EOF means
        # the peer hung up mid-body, so the connection cannot be reused.
        chunks = []
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(remaining)
            if not chunk:
                self.close_connection = True
                raise ServeError(
                    f"request body truncated: expected {length} bytes, "
                    f"got {length - remaining}"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        raw = b"".join(chunks)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServeError(f"request body is not valid JSON: {exc}") from None

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        if getattr(self, "_request_id", None) is not None:
            self.send_header("X-Request-Id", self._request_id)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    # -- routes ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._begin_request()
        try:
            if self.path == "/health":
                engine = self.server.engine
                self._send_json(
                    200,
                    {
                        "status": "ok",
                        "n_rules": len(engine.ruleset),
                        "cache": engine.cache_info(),
                    },
                )
            elif self.path == "/rules":
                self._send_json(
                    200,
                    {
                        "n_rules": len(self.server._rules_payload),
                        "rules": self.server._rules_payload,
                    },
                )
            elif self.path == "/metrics":
                self._send_text(200, self.server.render_metrics())
            else:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
        except ReproError as exc:
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:
            # Without this, a crashed route escapes to http.server: the
            # client gets no response while the metric/access-log record
            # status=0.  Mirror do_POST's JSON fallback instead.
            self._send_json(500, {"error": f"internal error: {exc}"})
        finally:
            self._finish_request("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._begin_request()
        try:
            if self.path != "/prescribe":
                # The request body is never read on this path; close the
                # connection so leftover bytes cannot corrupt a keep-alive peer.
                self.close_connection = True
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
                return
            try:
                payload = self._read_json_body()
                self._send_json(200, self._prescribe(payload))
            except ReproError as exc:
                self._send_json(400, {"error": str(exc)})
            except Exception as exc:  # pragma: no cover - defensive
                self._send_json(500, {"error": f"internal error: {exc}"})
        finally:
            self._finish_request("POST")

    def _prescribe(self, payload: object) -> dict:
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        engine = self.server.engine
        if "individual" in payload:
            individual = payload["individual"]
            if not isinstance(individual, dict):
                raise ServeError("'individual' must be a JSON object")
            return {"prescription": engine.prescribe(individual).to_dict()}
        if "individuals" in payload:
            individuals = payload["individuals"]
            if not isinstance(individuals, list) or not all(
                isinstance(i, dict) for i in individuals
            ):
                raise ServeError("'individuals' must be a list of JSON objects")
            prescriptions = engine.prescribe_batch(individuals)
            return {
                "count": len(prescriptions),
                "prescriptions": [p.to_dict() for p in prescriptions],
            }
        raise ServeError("request must contain 'individual' or 'individuals'")


def make_server(
    engine: PrescriptionEngine,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = True,
    log_stream=None,
) -> PrescriptionServer:
    """Bind a :class:`PrescriptionServer` (``port=0`` picks a free port).

    ``log_stream`` redirects the structured access log (stderr by default);
    the tests pass a ``StringIO`` to assert on the emitted JSON lines.
    """
    return PrescriptionServer((host, port), engine, quiet=quiet, log_stream=log_stream)


def run_server(
    engine: PrescriptionEngine,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = False,
) -> None:
    """Serve until interrupted (the blocking path behind the CLI)."""
    server = make_server(engine, host, port, quiet=quiet)
    print(
        f"serving {len(engine.ruleset)} prescription rules "
        f"on http://{host}:{server.port} (Ctrl-C to stop)"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.server_close()
