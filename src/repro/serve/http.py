"""Stdlib HTTP JSON API over a :class:`PrescriptionEngine`.

Built on :class:`http.server.ThreadingHTTPServer` — zero dependencies, one
thread per connection, shared engine.  Requests run concurrently: the
engine's matching structures are immutable after construction and its LRU
cache synchronizes internally, so no request-level lock is needed.
Endpoints:

- ``GET  /health``     — liveness plus rule count and cache statistics;
- ``GET  /rules``      — the served ruleset as JSON (artifact rule format);
- ``POST /prescribe``  — ``{"individual": {...}}`` for one profile, or
  ``{"individuals": [{...}, ...]}`` for a batch; responds with the
  corresponding ``prescription`` / ``prescriptions`` payloads.

Client errors (bad JSON, missing attributes, unknown paths) map to 400/404
with a ``{"error": ...}`` body; unexpected failures map to 500.

Start a server programmatically with :func:`make_server` (port 0 picks an
ephemeral port — the tests do this) or from the CLI::

    python -m repro serve --artifact ruleset.json --port 8080
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.artifact import rule_to_dict
from repro.serve.engine import PrescriptionEngine
from repro.utils.errors import ReproError, ServeError

MAX_BODY_BYTES = 8 * 1024 * 1024  # refuse absurd request bodies early


class PrescriptionServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one prescription engine."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        engine: PrescriptionEngine,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, PrescriptionRequestHandler)
        self.engine = engine
        self.quiet = quiet
        self._rules_payload = [rule_to_dict(r) for r in engine.ruleset]

    @property
    def port(self) -> int:
        """The bound port (useful when constructed with port 0)."""
        return int(self.server_address[1])


class PrescriptionRequestHandler(BaseHTTPRequestHandler):
    """Routes /health, /rules and /prescribe to the server's engine."""

    server: PrescriptionServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ---------------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if not self.server.quiet:  # pragma: no cover - logging passthrough
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> object:
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            self.close_connection = True  # body length unknown: cannot drain
            raise ServeError("Content-Length header is not an integer") from None
        if length <= 0:
            raise ServeError("request body is empty")
        if length > MAX_BODY_BYTES:
            self.close_connection = True  # body left unread on the socket
            raise ServeError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServeError(f"request body is not valid JSON: {exc}") from None

    # -- routes ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/health":
            engine = self.server.engine
            self._send_json(
                200,
                {
                    "status": "ok",
                    "n_rules": len(engine.ruleset),
                    "cache": engine.cache_info(),
                },
            )
        elif self.path == "/rules":
            self._send_json(
                200,
                {
                    "n_rules": len(self.server._rules_payload),
                    "rules": self.server._rules_payload,
                },
            )
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != "/prescribe":
            # The request body is never read on this path; close the
            # connection so leftover bytes cannot corrupt a keep-alive peer.
            self.close_connection = True
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            payload = self._read_json_body()
            self._send_json(200, self._prescribe(payload))
        except ReproError as exc:
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            self._send_json(500, {"error": f"internal error: {exc}"})

    def _prescribe(self, payload: object) -> dict:
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        engine = self.server.engine
        if "individual" in payload:
            individual = payload["individual"]
            if not isinstance(individual, dict):
                raise ServeError("'individual' must be a JSON object")
            return {"prescription": engine.prescribe(individual).to_dict()}
        if "individuals" in payload:
            individuals = payload["individuals"]
            if not isinstance(individuals, list) or not all(
                isinstance(i, dict) for i in individuals
            ):
                raise ServeError("'individuals' must be a list of JSON objects")
            prescriptions = engine.prescribe_batch(individuals)
            return {
                "count": len(prescriptions),
                "prescriptions": [p.to_dict() for p in prescriptions],
            }
        raise ServeError("request must contain 'individual' or 'individuals'")


def make_server(
    engine: PrescriptionEngine,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = True,
) -> PrescriptionServer:
    """Bind a :class:`PrescriptionServer` (``port=0`` picks a free port)."""
    return PrescriptionServer((host, port), engine, quiet=quiet)


def run_server(
    engine: PrescriptionEngine,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = False,
) -> None:
    """Serve until interrupted (the blocking path behind the CLI)."""
    server = make_server(engine, host, port, quiet=quiet)
    print(
        f"serving {len(engine.ruleset)} prescription rules "
        f"on http://{host}:{server.port} (Ctrl-C to stop)"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.server_close()
