"""Stdlib HTTP router for the prescription serving tier (the /v1 API).

This module is the *router* of a three-layer tier — it parses requests,
enforces transport policy, and renders responses; all serving logic lives
in :class:`~repro.serve.service.PrescriptionService` (service layer) and
:class:`~repro.serve.registry.ArtifactRegistry` (repository layer).
Zero dependencies beyond the stdlib: :class:`http.server.HTTPServer` with
a fixed pool of worker threads behind the accept loop.

Endpoints (``docs/serving.md`` is the full reference):

- ``GET  /v1/health``             — liveness, rule count, cache stats,
  active ruleset version;
- ``GET  /v1/rules``              — the served ruleset (artifact format);
- ``GET  /v1/metrics``            — Prometheus text exposition;
- ``GET  /v1/artifacts``          — registry listing + active version;
- ``POST /v1/artifacts/activate`` — hot-reload: ``{"version": N}`` or
  ``{"rollback": true}``;
- ``POST /v1/prescribe``          — ``{"individual": {...}}`` or
  ``{"individuals": [...]}``.

The pre-/v1 paths (``/health``, ``/rules``, ``/metrics``, ``/prescribe``)
remain as **deprecated aliases**: they run the exact same handlers (so
bodies are byte-identical), but answer with a ``Deprecation: true`` header
and tick the ``http.deprecated_path`` counter.

Every non-2xx response carries one uniform JSON envelope::

    {"error": {"code": "...", "message": "...", "request_id": "..."}}

with stable codes (``bad_request``, ``not_found``, ``method_not_allowed``,
``artifact_invalid``, ``over_capacity``, ``draining``,
``deadline_exceeded``, ``internal``) — see :mod:`repro.serve.schemas`.

Concurrency model:

- a fixed worker pool (``ServeConfig.workers``) runs connections; each
  live connection occupies one worker, so ``workers`` bounds connection
  concurrency and idle keep-alive sockets time out after
  ``_CONNECTION_IDLE_SECONDS`` to release their worker;
- ``max_concurrency`` bounds *admitted* requests below that; excess
  requests get an immediate 503 + ``Retry-After``
  (``http.backpressure_rejections``).  Ops endpoints (health, metrics)
  bypass the gate — operators need them most exactly when it is closed;
- with ``batch_window_ms > 0``, concurrent single-individual prescribe
  requests are coalesced by a :class:`~repro.serve.batching.MicroBatcher`
  into one vectorized batch match (``serve.batch_size`` histogram);
- hot reload is an RCU-style pointer swap in the service layer: each
  request snapshots the serving state once in ``_begin_request`` and uses
  it for its whole lifetime, so a swap mid-request can never produce a
  hybrid response and no request is ever dropped.

Resilience surfaces preserved from the pre-/v1 tier: per-request
deadlines (``X-Request-Deadline-Ms``, 504 on expiry), graceful drain on
SIGTERM (503 to new requests, in-flight requests finish), and client
disconnects counted (``http.client_disconnects``) instead of logged as
500s.  Every response carries ``X-Request-Id`` (echoing the request's own
when present); successful bodies also carry a ``request_id`` field.

Start a server programmatically with :func:`make_server` (``port=0`` picks
an ephemeral port — the tests and the load benchmark do this) or from the
CLI::

    python -m repro serve --artifact ruleset.json --port 8080
    python -m repro serve --artifact-dir artifacts/ --port 8080
"""

from __future__ import annotations

import json
import queue
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, HTTPServer

from repro.obs import MetricsRegistry, StructuredLogger, new_request_id, render_prometheus
from repro.serve.batching import MicroBatcher
from repro.serve.config import ServeConfig
from repro.serve.engine import PrescriptionEngine
from repro.serve.registry import ArtifactRegistry
from repro.serve.schemas import (
    ActivateRequest,
    ApiError,
    PrescribeRequest,
    error_envelope,
)
from repro.serve.service import PrescriptionService
from repro.utils.errors import ReproError, ServeError

MAX_BODY_BYTES = 8 * 1024 * 1024  # refuse absurd request bodies early

#: Idle keep-alive connections release their worker after this long.
_CONNECTION_IDLE_SECONDS = 30.0

_V1_GET = frozenset({"/v1/health", "/v1/rules", "/v1/metrics", "/v1/artifacts"})
_V1_POST = frozenset({"/v1/prescribe", "/v1/artifacts/activate"})

#: Routes that get their own ``path`` metric label; anything else is folded
#: into ``other`` so arbitrary scanned paths cannot blow up label
#: cardinality.  Aliases report under their canonical /v1 label.
_KNOWN_PATHS = _V1_GET | _V1_POST

#: Deprecated pre-/v1 paths, served byte-identically by the /v1 handlers.
LEGACY_ALIASES = {
    "/health": "/v1/health",
    "/rules": "/v1/rules",
    "/metrics": "/v1/metrics",
    "/prescribe": "/v1/prescribe",
}

#: Endpoints operators need while the gate is closed or the server drains.
_OPS_PATHS = frozenset({"/v1/health", "/v1/metrics"})

_HANDLERS = {
    "/v1/health": "_handle_health",
    "/v1/rules": "_handle_rules",
    "/v1/metrics": "_handle_metrics",
    "/v1/artifacts": "_handle_artifacts",
    "/v1/artifacts/activate": "_handle_activate",
    "/v1/prescribe": "_handle_prescribe",
}

_HELP_TEXTS = {
    "http.requests": "HTTP requests served, by method/path/status.",
    "http.request_seconds": "Request wall-clock latency in seconds.",
    "http.backpressure_rejections": "Requests rejected with 503, by reason.",
    "http.deadline_exceeded": "Requests aborted with 504 past their deadline.",
    "http.client_disconnects": "Requests whose peer hung up mid-response.",
    "http.deprecated_path": "Requests answered via a deprecated path alias.",
    "serve.batch_size": "Coalesced micro-batch sizes (requests per dispatch).",
    "serve.reloads": "Successful artifact hot-reloads since start.",
    "serve.ruleset_version": "Active ruleset artifact version (0 = unversioned).",
    "engine.cache.hits": "Prescription-engine LRU hits since start.",
    "engine.cache.misses": "Prescription-engine LRU misses since start.",
    "engine.cache.size": "Prescription-engine LRU entries right now.",
    "engine.rules": "Rules loaded in the serving ruleset.",
}


class _DeadlineExceeded(Exception):
    """Internal: a request ran past its deadline (mapped to 504)."""


class _WorkerPool:
    """A fixed pool of daemon worker threads draining one queue.

    Deliberately not :class:`concurrent.futures.ThreadPoolExecutor`: its
    non-daemon threads are joined at interpreter exit, so one connection
    wedged in a keep-alive read would hang process shutdown.  Daemon
    threads + an unbounded handoff queue give the same semantics without
    that failure mode.
    """

    def __init__(self, size: int, name: str = "serve-worker") -> None:
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._threads = [
            threading.Thread(
                target=self._run, name=f"{name}-{i}", daemon=True
            )
            for i in range(size)
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, fn, *args) -> None:
        self._queue.put((fn, args))

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            fn, args = item
            fn(*args)

    def close(self) -> None:
        for _ in self._threads:
            self._queue.put(None)


class PrescriptionServer(HTTPServer):
    """The serving tier's transport: accept loop + worker pool + gates."""

    # socketserver's default listen backlog of 5 resets concurrent
    # connection bursts (RST before accept) well below the concurrency the
    # worker pool and admission gate are sized for; let the kernel queue a
    # burst and the 503 gate do the load shedding instead.
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        service: PrescriptionService,
        config: ServeConfig | None = None,
        log_stream=None,
    ) -> None:
        super().__init__(address, PrescriptionRequestHandler)
        self.config = config if config is not None else ServeConfig(port=0)
        self.service = service
        self.quiet = self.config.quiet
        self.metrics = MetricsRegistry()
        self.logger = StructuredLogger(
            stream=log_stream, enabled=not self.config.quiet, component="serve"
        )
        self.request_deadline_seconds = self.config.request_deadline_seconds
        self._gate = (
            threading.BoundedSemaphore(self.config.max_concurrency)
            if self.config.max_concurrency is not None
            else None
        )
        self.batcher = (
            MicroBatcher(
                self.config.batch_window_ms,
                max_size=self.config.batch_max_size,
                on_batch=lambda n: self.metrics.observe("serve.batch_size", n),
            )
            if self.config.batch_window_ms > 0
            else None
        )
        self._pool = _WorkerPool(self.config.workers)
        self.draining = False
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._shutdown_started = False

    @property
    def engine(self) -> PrescriptionEngine:
        """The engine of the *current* generation (changes on hot reload)."""
        return self.service.state.engine

    @property
    def single_dispatch(self):
        """How single-individual prescribes run: batched or direct."""
        return self.batcher.submit if self.batcher is not None else None

    # -- worker pool -------------------------------------------------------------

    def process_request(self, request, client_address) -> None:
        # The accept loop hands every connection to the pool; a worker owns
        # it for its keep-alive lifetime (bounded by the idle timeout).
        self._pool.submit(self._process_in_worker, request, client_address)

    def _process_in_worker(self, request, client_address) -> None:
        try:
            self.finish_request(request, client_address)
        except Exception:
            self.handle_error(request, client_address)
        finally:
            self.shutdown_request(request)

    # -- resilience plumbing ----------------------------------------------------

    def try_acquire_slot(self) -> bool:
        """One unit of the bounded-concurrency gate (non-blocking)."""
        if self._gate is None:
            return True
        return self._gate.acquire(blocking=False)

    def release_slot(self) -> None:
        if self._gate is not None:
            self._gate.release()

    def track_request(self, delta: int) -> None:
        with self._inflight_lock:
            self._inflight += delta

    @property
    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    def begin_graceful_shutdown(self, drain_timeout: float = 10.0) -> None:
        """Reject new requests with 503, drain in-flight ones, then stop.

        The accept loop keeps running through the drain — a stopped loop
        would leave freshly-connected peers hanging in the TCP backlog
        with no response at all, which is worse than an honest 503.  Safe
        to call from a signal handler (``shutdown()`` blocks until the
        accept loop exits, so the sequence runs on a helper thread) and
        idempotent.
        """
        if self._shutdown_started:
            return
        self._shutdown_started = True
        self.draining = True

        def _drain_then_stop() -> None:
            self.drain(timeout=drain_timeout)
            self.shutdown()

        threading.Thread(target=_drain_then_stop, daemon=True).start()

    def drain(self, timeout: float = 10.0) -> bool:
        """Wait until no request is in flight; ``False`` on timeout."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.inflight == 0:
                return True
            time.sleep(0.02)
        return self.inflight == 0

    def handle_error(self, request, client_address) -> None:
        # A peer that hangs up mid-response surfaces here when the write
        # fails outside the handler's own try (e.g. the keep-alive flush);
        # count it instead of spraying a traceback to stderr.
        import sys

        exc = sys.exc_info()[1]
        if isinstance(exc, (BrokenPipeError, ConnectionResetError)):
            self.metrics.inc("http.client_disconnects", 1, stage="connection")
            return
        self.logger.log(
            "http.error", error=repr(exc), client=str(client_address)
        )

    def render_metrics(self) -> str:
        """The /v1/metrics document: request metrics + live engine gauges."""
        state = self.service.state
        info = state.engine.cache_info()
        self.metrics.set_gauge("engine.cache.hits", info["hits"])
        self.metrics.set_gauge("engine.cache.misses", info["misses"])
        self.metrics.set_gauge("engine.cache.size", info["size"])
        self.metrics.set_gauge("engine.rules", len(state.engine.ruleset))
        self.metrics.set_gauge(
            "serve.ruleset_version",
            state.version if state.version is not None else 0,
        )
        return render_prometheus(self.metrics.snapshot(), help_texts=_HELP_TEXTS)

    def server_close(self) -> None:
        if self.batcher is not None:
            self.batcher.close()
        super().server_close()
        self._pool.close()

    @property
    def port(self) -> int:
        """The bound port (useful when constructed with port 0)."""
        return int(self.server_address[1])


class PrescriptionRequestHandler(BaseHTTPRequestHandler):
    """Routes the /v1 surface (and its legacy aliases) to the service."""

    server: PrescriptionServer
    protocol_version = "HTTP/1.1"
    timeout = _CONNECTION_IDLE_SECONDS  # idle keep-alive frees its worker
    # Nagle + delayed ACK costs ~40ms per keep-alive round-trip on small
    # JSON bodies; a serving tier answers now, not on the next ACK.
    disable_nagle_algorithm = True

    # -- plumbing ---------------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        # BaseHTTPRequestHandler funnels its own diagnostics (parse errors,
        # log_request) through here; route them to the structured logger so
        # quiet mode and the JSON-lines format are honored uniformly.
        self.server.logger.log(
            "http.message",
            message=format % args,
            client=self.address_string(),
            request_id=getattr(self, "_request_id", None),
        )

    def log_request(self, code: object = "-", size: object = "-") -> None:
        # Replaced by the access-log line in _finish_request (which carries
        # the request id and latency); suppress the default per-response log.
        pass

    def _send_json(
        self,
        status: int,
        payload: dict,
        headers: dict | None = None,
        inject_request_id: bool = True,
    ) -> None:
        request_id = getattr(self, "_request_id", None)
        if (
            inject_request_id
            and request_id is not None
            and "request_id" not in payload
        ):
            payload = {**payload, "request_id": request_id}
        body = json.dumps(payload).encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        if request_id is not None:
            self.send_header("X-Request-Id", request_id)
        if getattr(self, "_deprecated", False):
            self.send_header("Deprecation", "true")
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_envelope(
        self,
        status: int,
        code: str,
        message: str,
        headers: dict | None = None,
    ) -> None:
        self._send_json(
            status,
            error_envelope(code, message, getattr(self, "_request_id", None)),
            headers=headers,
            inject_request_id=False,
        )

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        if getattr(self, "_request_id", None) is not None:
            self.send_header("X-Request-Id", self._request_id)
        if getattr(self, "_deprecated", False):
            self.send_header("Deprecation", "true")
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _begin_request(self) -> None:
        self._started = time.perf_counter()
        self._status = 0
        self._request_id = self.headers.get("X-Request-Id") or new_request_id()
        self._client_disconnected = False
        self._slot_held = False
        self._canonical = LEGACY_ALIASES.get(self.path, self.path)
        self._deprecated = self.path in LEGACY_ALIASES
        # One snapshot per request: a hot reload mid-request cannot hand
        # this handler a hybrid of two ruleset generations.
        self._snapshot = self.server.service.state
        if self._deprecated:
            self.server.metrics.inc("http.deprecated_path", 1, path=self.path)
        self.server.track_request(1)
        deadline = self.server.request_deadline_seconds
        header = self.headers.get("X-Request-Deadline-Ms")
        if header is not None:
            try:
                requested = float(header) / 1e3
            except ValueError:
                requested = None
            if requested is not None and requested > 0:
                deadline = (
                    requested if deadline is None else min(deadline, requested)
                )
        self._deadline = None if deadline is None else self._started + deadline

    def _check_deadline(self) -> None:
        if (
            self._deadline is not None
            and time.perf_counter() > self._deadline
        ):
            raise _DeadlineExceeded()

    def _admit(self) -> bool:
        """Backpressure + drain gate; ops endpoints always pass.

        Returns False after sending the 503 itself — the caller just
        returns.  A held slot is released in ``_finish_request``.
        """
        server = self.server
        if self._canonical in _OPS_PATHS:
            return True
        if server.draining:
            self.close_connection = True
            server.metrics.inc("http.backpressure_rejections", 1, reason="draining")
            self._send_error_envelope(
                503,
                "draining",
                "server is shutting down",
                headers={"Retry-After": 1},
            )
            return False
        if not server.try_acquire_slot():
            server.metrics.inc("http.backpressure_rejections", 1, reason="capacity")
            self._send_error_envelope(
                503,
                "over_capacity",
                "server at capacity",
                headers={"Retry-After": 1},
            )
            return False
        self._slot_held = True
        return True

    def _finish_request(self, method: str) -> None:
        duration = time.perf_counter() - self._started
        path = self._canonical if self._canonical in _KNOWN_PATHS else "other"
        server = self.server
        if self._slot_held:
            server.release_slot()
        server.track_request(-1)
        metrics = server.metrics
        if self._client_disconnected:
            # The peer hung up mid-response: there is no meaningful status
            # to record (and recording a 500 would page someone for a
            # client-side event); count the disconnect instead.
            metrics.inc("http.client_disconnects", 1, method=method, path=path)
            server.logger.log(
                "http.client_disconnect",
                request_id=self._request_id,
                method=method,
                path=self.path,
                duration_ms=round(duration * 1e3, 3),
                client=self.address_string(),
            )
            return
        metrics.inc(
            "http.requests", 1, method=method, path=path, status=self._status
        )
        metrics.observe("http.request_seconds", duration, method=method, path=path)
        server.logger.log(
            "http.request",
            request_id=self._request_id,
            method=method,
            path=self.path,
            status=self._status,
            duration_ms=round(duration * 1e3, 3),
            client=self.address_string(),
        )

    def _read_json_body(self) -> object:
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            self.close_connection = True  # body length unknown: cannot drain
            raise ServeError("Content-Length header is not an integer") from None
        if length <= 0:
            raise ServeError("request body is empty")
        if length > MAX_BODY_BYTES:
            self.close_connection = True  # body left unread on the socket
            raise ServeError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        # rfile wraps a socket: one read may legally return fewer than
        # ``length`` bytes (e.g. the body arrives in several TCP segments).
        # Loop until the declared length is in hand; a premature EOF means
        # the peer hung up mid-body, so the connection cannot be reused.
        chunks = []
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(remaining)
            if not chunk:
                self.close_connection = True
                raise ServeError(
                    f"request body truncated: expected {length} bytes, "
                    f"got {length - remaining}"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        raw = b"".join(chunks)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServeError(f"request body is not valid JSON: {exc}") from None

    # -- routing ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._route("POST")

    def _route(self, method: str) -> None:
        self._begin_request()
        try:
            try:
                if not self._admit():
                    return
                canonical = self._canonical
                if canonical not in _KNOWN_PATHS:
                    if method == "POST":
                        # The request body is never read on this path;
                        # close the connection so leftover bytes cannot
                        # corrupt a keep-alive peer.
                        self.close_connection = True
                    raise ApiError.not_found(f"unknown path {self.path!r}")
                allowed = "POST" if canonical in _V1_POST else "GET"
                if method != allowed:
                    if method == "POST":
                        self.close_connection = True  # body left unread
                    raise ApiError(
                        405,
                        "method_not_allowed",
                        f"{canonical} only supports {allowed}",
                    )
                getattr(self, _HANDLERS[canonical])()
            except (BrokenPipeError, ConnectionResetError):
                raise  # the outer handler owns disconnects, not the 500 path
            except _DeadlineExceeded:
                self._send_deadline_exceeded(method)
            except ApiError as exc:
                self._send_error_envelope(exc.status, exc.code, str(exc))
            except ReproError as exc:
                self._send_error_envelope(400, "bad_request", str(exc))
            except Exception as exc:
                # Without this, a crashed route escapes to http.server: the
                # client gets no response while the metric/access-log record
                # status=0.  Answer the uniform envelope instead.
                self._send_error_envelope(
                    500, "internal", f"internal error: {exc}"
                )
        except (BrokenPipeError, ConnectionResetError):
            self._client_disconnected = True
            self.close_connection = True
        finally:
            self._finish_request(method)

    def _send_deadline_exceeded(self, method: str) -> None:
        path = self._canonical if self._canonical in _KNOWN_PATHS else "other"
        self.server.metrics.inc(
            "http.deadline_exceeded", 1, method=method, path=path
        )
        self.close_connection = True  # the peer has likely given up waiting
        self._send_error_envelope(
            504, "deadline_exceeded", "request deadline exceeded"
        )

    # -- route handlers ----------------------------------------------------------

    def _handle_health(self) -> None:
        response = self.server.service.health(
            self._snapshot, self.server.draining
        )
        self._send_json(200, response.to_payload())

    def _handle_rules(self) -> None:
        self._check_deadline()
        self._send_json(200, self.server.service.rules(self._snapshot).to_payload())

    def _handle_metrics(self) -> None:
        self._send_text(200, self.server.render_metrics())

    def _handle_artifacts(self) -> None:
        self._check_deadline()
        response = self.server.service.list_artifacts(self._snapshot)
        self._send_json(200, response.to_payload())

    def _handle_activate(self) -> None:
        self._check_deadline()
        request = ActivateRequest.parse(self._read_json_body())
        response = self.server.service.activate(request)
        self.server.metrics.inc("serve.reloads", 1)
        self._send_json(200, response.to_payload())

    def _handle_prescribe(self) -> None:
        self._check_deadline()
        request = PrescribeRequest.parse(self._read_json_body())
        response = self.server.service.prescribe(
            request,
            self._snapshot,
            deadline_check=self._check_deadline if self._deadline else None,
            single_dispatch=self.server.single_dispatch,
        )
        self._check_deadline()
        self._send_json(200, response.to_payload())


def make_server(
    engine: PrescriptionEngine | None = None,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = True,
    log_stream=None,
    max_concurrency: int | None = 64,
    request_deadline_seconds: float | None = None,
    config: ServeConfig | None = None,
    service: PrescriptionService | None = None,
    registry: ArtifactRegistry | None = None,
) -> PrescriptionServer:
    """Bind a :class:`PrescriptionServer` (``port=0`` picks a free port).

    Three ways to say what to serve, in precedence order: a ready
    ``service``, a ``registry`` (or ``config.artifact_dir``) to build one
    from, or a bare ``engine`` (single-artifact mode).  A full
    :class:`ServeConfig` supersedes the individual keyword arguments,
    which remain for the common programmatic case::

        server = make_server(engine, port=0)                      # simple
        server = make_server(config=cfg, registry=reg)            # full tier

    ``log_stream`` redirects the structured access log (stderr by default);
    the tests pass a ``StringIO`` to assert on the emitted JSON lines.
    """
    if config is None:
        config = ServeConfig(
            host=host,
            port=port,
            quiet=quiet,
            max_concurrency=max_concurrency,
            request_deadline_seconds=request_deadline_seconds,
        )
    if service is None:
        if registry is None and config.artifact_dir is not None:
            registry = ArtifactRegistry(config.artifact_dir)
        if registry is not None:
            service = PrescriptionService.from_registry(
                registry, cache_size=config.cache_size
            )
        elif engine is not None:
            service = PrescriptionService.from_engine(engine)
        else:
            raise ServeError(
                "make_server needs an engine, a service, or an artifact "
                "directory to serve from"
            )
    return PrescriptionServer(
        (config.host, config.port), service, config=config, log_stream=log_stream
    )


def run_server(
    engine: PrescriptionEngine | None = None,
    config: ServeConfig | None = None,
    service: PrescriptionService | None = None,
) -> None:
    """Serve until interrupted (the blocking path behind the CLI).

    All tunables come from ``config`` (a :class:`ServeConfig`); SIGTERM
    triggers a graceful shutdown: the accept loop stops, new requests are
    rejected with 503, and in-flight requests get up to
    ``config.drain_timeout_seconds`` to finish before the socket closes —
    the contract a rolling deploy or an orchestrator's preStop hook
    expects.
    """
    if config is None:
        config = ServeConfig(quiet=False)
    server = make_server(engine, config=config, service=service)
    state = server.service.state
    version = (
        f" (artifact v{state.version})" if state.version is not None else ""
    )
    print(
        f"serving {len(state.engine.ruleset)} prescription rules{version} "
        f"on http://{config.host}:{server.port} (Ctrl-C to stop)"
    )

    def _on_sigterm(signum, frame):  # pragma: no cover - signal path
        server.begin_graceful_shutdown(
            drain_timeout=config.drain_timeout_seconds
        )

    try:
        previous = signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:  # pragma: no cover - non-main thread (tests)
        previous = None
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        server.draining = True
    finally:
        drained = server.drain(timeout=config.drain_timeout_seconds)
        if not drained:  # pragma: no cover - only on a wedged handler
            server.logger.log(
                "http.drain_timeout", inflight=server.inflight
            )
        server.server_close()
        if previous is not None:
            try:
                signal.signal(signal.SIGTERM, previous)
            except ValueError:  # pragma: no cover
                pass
