"""Request micro-batching: coalesce concurrent prescribe calls into one match.

Single-individual ``POST /v1/prescribe`` requests arriving within a small
window are collected by one dispatcher thread and answered through a single
vectorized :meth:`PrescriptionEngine.prescribe_profiles` call — amortizing
per-request matching overhead exactly like the mining engine amortizes
per-level costs.  The contract is strictly *performance-only*:

- every request gets the same :class:`Prescription` (or the same
  :class:`~repro.utils.errors.ServeError`) it would have gotten from a
  direct ``engine.prescribe`` call — the engine's coalesced path falls
  back to scalar dispatch for anything it cannot prove equivalent;
- one request's bad profile never fails its batch neighbours;
- a hot reload mid-window is safe: each submission pins the engine it
  snapshotted, and the dispatcher groups a batch by engine generation, so
  a batch never mixes ruleset versions.

The window (``window_ms``) bounds added latency; ``max_size`` bounds batch
memory and dispatches a full batch early.  ``window_ms == 0`` disables
coalescing entirely — the transport then calls the engine directly.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Mapping

from repro.serve.engine import Prescription, PrescriptionEngine
from repro.utils.errors import ServeError


class _Pending:
    """One submitted request waiting for its batch to dispatch."""

    __slots__ = ("engine", "individual", "event", "result")

    def __init__(
        self, engine: PrescriptionEngine, individual: Mapping[str, object]
    ) -> None:
        self.engine = engine
        self.individual = individual
        self.event = threading.Event()
        self.result: Prescription | BaseException | None = None


class MicroBatcher:
    """Window-based coalescing of single-profile prescribe calls.

    Parameters
    ----------
    window_ms:
        How long the dispatcher holds the *first* request of a batch open
        for followers (the added-latency budget).
    max_size:
        Dispatch early once this many requests are pending.
    on_batch:
        Optional observer called with each dispatched batch's size (the
        HTTP tier records a histogram from it).
    """

    def __init__(
        self,
        window_ms: float,
        max_size: int = 64,
        on_batch: Callable[[int], None] | None = None,
    ) -> None:
        if window_ms <= 0:
            raise ServeError("MicroBatcher requires window_ms > 0")
        if max_size < 1:
            raise ServeError("MicroBatcher requires max_size >= 1")
        self.window_s = window_ms / 1e3
        self.max_size = int(max_size)
        self._on_batch = on_batch
        self._pending: list[_Pending] = []
        self._cond = threading.Condition()
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._run, name="serve-batcher", daemon=True
        )
        self._dispatcher.start()

    # -- client side ----------------------------------------------------------------

    def submit(
        self, engine: PrescriptionEngine, individual: Mapping[str, object]
    ) -> Prescription:
        """Block until the batch containing this request dispatches.

        Returns the prescription, or raises exactly what a direct
        ``engine.prescribe(individual)`` would have raised.
        """
        item = _Pending(engine, individual)
        with self._cond:
            if self._closed:
                # Late submission during shutdown: serve it directly rather
                # than drop it — the zero-dropped-requests contract.
                return engine.prescribe(individual)
            self._pending.append(item)
            self._cond.notify_all()
        item.event.wait()
        if isinstance(item.result, BaseException):
            raise item.result
        assert item.result is not None
        return item.result

    def close(self) -> None:
        """Stop the dispatcher after flushing everything pending."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._dispatcher.join(timeout=5.0)

    # -- dispatcher side --------------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if not self._pending and self._closed:
                    return
                # First request opens the window; hold it for followers.
                deadline = time.monotonic() + self.window_s
                while len(self._pending) < self.max_size and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(timeout=remaining)
                batch, self._pending = self._pending, []
            self._dispatch(batch)

    def _dispatch(self, batch: list[_Pending]) -> None:
        if self._on_batch is not None:
            try:
                self._on_batch(len(batch))
            except Exception:
                pass
        # A reload mid-window may leave requests pinned to different engine
        # generations in one batch; group by generation so a batch never
        # mixes ruleset versions.
        groups: dict[int, list[_Pending]] = {}
        for item in batch:
            groups.setdefault(id(item.engine), []).append(item)
        for items in groups.values():
            engine = items[0].engine
            try:
                results = engine.prescribe_profiles(
                    [item.individual for item in items]
                )
            except Exception as exc:
                # Defensive: prescribe_profiles returns per-profile errors;
                # anything escaping it fails the group, not the process.
                for item in items:
                    item.result = exc
                    item.event.set()
                continue
            for item, result in zip(items, results):
                item.result = result
                item.event.set()
