"""The serving tier's service layer: engine lifecycle + atomic hot-reload.

The HTTP router is deliberately thin; everything between "parsed request"
and "response dataclass" lives here, against two small abstractions:

:class:`ServingState`
    One *immutable* generation of serving state: the engine, its
    JSON-ready rules payload, and the artifact version it came from.
    A request handler snapshots the state exactly once and uses that
    snapshot for its whole lifetime, so a concurrent reload can never
    hand one request a hybrid of two ruleset versions.

:class:`PrescriptionService`
    Owns the *current* state behind an RCU-style pointer.  Hot reload
    (:meth:`activate`) builds the complete next generation off to the
    side — load + validate artifact, compile the rule index, render the
    rules payload — and then publishes it with a single attribute
    assignment (atomic in CPython).  In-flight requests finish on the
    generation they snapshotted; new requests see the new one.  No lock
    is ever held while serving, and a failed reload (missing version,
    torn artifact) leaves the active generation untouched.

The service runs in one of two modes:

- **registry mode** (``artifact_dir`` configured): versions come from an
  :class:`~repro.serve.registry.ArtifactRegistry`; ``/v1/artifacts`` can
  list, activate and roll back.
- **single-artifact mode** (an engine handed in directly): the engine is
  the only generation; ``/v1/artifacts`` is read-only and activation
  requests are rejected with a clean 400.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.serve.artifact import rule_to_dict
from repro.serve.engine import Prescription, PrescriptionEngine
from repro.serve.registry import ArtifactRegistry
from repro.serve.schemas import (
    ActivateRequest,
    ActivateResponse,
    ApiError,
    ArtifactInfo,
    ArtifactsResponse,
    BatchPrescribeResponse,
    HealthResponse,
    PrescribeRequest,
    PrescribeResponse,
    RulesResponse,
    prescription_payload,
)
from repro.utils.errors import ServeError


@dataclass(frozen=True)
class ServingState:
    """One immutable generation of serving state (see module docstring)."""

    engine: PrescriptionEngine
    rules_payload: tuple[dict, ...]
    version: int | None

    @classmethod
    def from_engine(
        cls, engine: PrescriptionEngine, version: int | None = None
    ) -> "ServingState":
        return cls(
            engine=engine,
            rules_payload=tuple(rule_to_dict(r) for r in engine.ruleset),
            version=version,
        )


class PrescriptionService:
    """Route-agnostic serving logic over a hot-swappable :class:`ServingState`."""

    def __init__(
        self,
        state: ServingState,
        registry: ArtifactRegistry | None = None,
        cache_size: int = 1024,
    ) -> None:
        self._state = state
        self.registry = registry
        self._cache_size = cache_size
        # Serializes *writers* (activate/rollback). Readers never take it:
        # they read self._state once, which CPython makes atomic.
        self._reload_lock = threading.Lock()
        self.reload_count = 0

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_engine(
        cls, engine: PrescriptionEngine, version: int | None = None
    ) -> "PrescriptionService":
        """Single-artifact mode: serve exactly this engine, no registry."""
        return cls(ServingState.from_engine(engine, version))

    @classmethod
    def from_registry(
        cls, registry: ArtifactRegistry, cache_size: int = 1024
    ) -> "PrescriptionService":
        """Registry mode: serve the ``ACTIVE`` version (or latest if unset)."""
        version = registry.active_version()
        if version is not None:
            artifact = registry.get(version)
        else:
            latest = registry.latest_version()
            if latest is None:
                raise ServeError(
                    f"artifact registry {registry.root} has no published versions"
                )
            version, artifact = latest, registry.activate(latest)
        engine = PrescriptionEngine.from_artifact(artifact, cache_size=cache_size)
        return cls(
            ServingState.from_engine(engine, version),
            registry=registry,
            cache_size=cache_size,
        )

    # -- state ---------------------------------------------------------------------

    @property
    def state(self) -> ServingState:
        """Snapshot the current generation (handlers call this exactly once)."""
        return self._state

    # -- request handling ----------------------------------------------------------

    def prescribe(
        self,
        request: PrescribeRequest,
        state: ServingState,
        deadline_check: Callable[[], None] | None = None,
        single_dispatch: Callable[
            [PrescriptionEngine, Mapping[str, object]], Prescription
        ]
        | None = None,
    ) -> PrescribeResponse | BatchPrescribeResponse:
        """Answer a parsed prescribe request against one state snapshot.

        ``single_dispatch`` lets the transport route single-individual
        requests through its micro-batcher; client-side batches run the
        scalar loop with ``deadline_check`` between individuals so a huge
        batch cannot blow through the request budget unbounded.
        """
        engine = state.engine
        if request.individual is not None:
            if single_dispatch is not None:
                prescription = single_dispatch(engine, request.individual)
            else:
                prescription = engine.prescribe(request.individual)
            return PrescribeResponse(
                prescription=prescription_payload(prescription),
                ruleset_version=state.version,
            )
        prescriptions = []
        for individual in request.individuals or ():
            if deadline_check is not None:
                deadline_check()
            prescriptions.append(engine.prescribe(individual))
        return BatchPrescribeResponse(
            prescriptions=tuple(prescription_payload(p) for p in prescriptions),
            ruleset_version=state.version,
        )

    def rules(self, state: ServingState) -> RulesResponse:
        return RulesResponse(
            rules=state.rules_payload, ruleset_version=state.version
        )

    def health(self, state: ServingState, draining: bool) -> HealthResponse:
        return HealthResponse(
            status="ok",
            n_rules=len(state.engine.ruleset),
            draining=draining,
            cache=state.engine.cache_info(),
            ruleset_version=state.version,
        )

    def list_artifacts(self, state: ServingState) -> ArtifactsResponse:
        if self.registry is None:
            return ArtifactsResponse(
                artifacts=(), active_version=state.version, registry=False
            )
        active = self.registry.active_version()
        return ArtifactsResponse(
            artifacts=tuple(
                ArtifactInfo(
                    version=record.version,
                    active=record.version == active,
                    size_bytes=record.size_bytes,
                )
                for record in self.registry.list_versions()
            ),
            active_version=active,
            registry=True,
        )

    # -- hot reload ------------------------------------------------------------------

    def activate(self, request: ActivateRequest) -> ActivateResponse:
        """Swap the served generation to another artifact version.

        The new generation is built completely (artifact loaded and
        validated, index compiled, rules payload rendered) *before* the
        pointer moves; any failure — absent version, torn file — raises
        before anything changes, so the active generation keeps serving.
        """
        if self.registry is None:
            raise ApiError.bad_request(
                "no artifact registry configured; start the server with "
                "an artifact directory to enable activation"
            )
        with self._reload_lock:
            previous = self.registry.active_version()
            if request.rollback:
                version, artifact = self.registry.rollback()
            else:
                assert request.version is not None  # enforced by parse()
                version = request.version
                artifact = self.registry.activate(version)
            engine = PrescriptionEngine.from_artifact(
                artifact, cache_size=self._cache_size
            )
            # The swap: one attribute assignment, atomic in CPython.
            self._state = ServingState.from_engine(engine, version)
            self.reload_count += 1
            return ActivateResponse(
                active_version=version,
                previous_version=previous,
                n_rules=len(engine.ruleset),
            )
