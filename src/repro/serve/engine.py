"""The prescription engine: from matched rules to a single recommendation.

When several rules apply to one individual, the engine resolves them with
the paper's expected-utility semantics (Def. 4.5):

- a **protected** individual is assumed to receive the *worst* applicable
  rule (Eq. 6): the matched rule minimizing ``utility_protected``;
- everyone else is assumed to receive the *best* applicable rule (Eq. 5):
  the matched rule maximizing ``utility``.

Ties break toward the earlier rule, so results are deterministic and the
vectorized batch path is bit-identical to the scalar path.

Repeated lookups for the same attribute profile are common in serving
(individuals cluster on the few immutable attributes rules mention), so
:meth:`PrescriptionEngine.prescribe` sits behind a small LRU cache keyed by
the profile restricted to the attributes that can change the answer.  The
cache is mutated from every handler thread of the HTTP tier, so all access
— lookup, insert, eviction, counters — happens under one lock, and every
prescribed profile contributes exactly one hit-or-miss counter event
(``hits + misses == lookups`` holds under any interleaving; the concurrent
hammer test pins this).

:meth:`PrescriptionEngine.prescribe_profiles` is the serving tier's
coalescing path: many *independent* profiles (e.g. concurrent HTTP requests
batched by :class:`~repro.serve.batching.MicroBatcher`) are matched through
one vectorized :meth:`CompiledRuleIndex.match_table` call.  Outcomes are
identical to per-profile :meth:`prescribe` dispatch — including the
per-profile errors — because any profile the vectorized path cannot prove
equivalent (missing attributes, non-numeric values on numeric plans,
heterogeneous key sets) falls back to the scalar path.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.rules.protected import ProtectedGroup
from repro.rules.ruleset import RuleSet
from repro.serve.artifact import ServingArtifact, pattern_to_list
from repro.serve.index import CompiledRuleIndex, _NumericPlan
from repro.tabular.schema import AttributeKind, Schema
from repro.tabular.table import Table
from repro.utils.errors import ServeError


@dataclass(frozen=True)
class Prescription:
    """The engine's answer for one individual.

    Attributes
    ----------
    rule_index:
        Index (into the served ruleset) of the resolved rule, or ``None``
        when no rule applies.
    matched_rules:
        Indices of *all* applicable rules, in rule order (provenance).
    expected_utility:
        The resolved rule's utility under the applicable semantics
        (``utility_protected`` for protected individuals, ``utility``
        otherwise); 0.0 when no rule applies.
    protected:
        Whether the individual belongs to the protected group; ``None``
        when the artifact carries no protected group or the profile lacks
        the attributes needed to decide.
    intervention:
        The resolved rule's intervention predicates as JSON-ready
        dictionaries (empty when no rule applies).
    """

    rule_index: int | None
    matched_rules: tuple[int, ...]
    expected_utility: float
    protected: bool | None
    intervention: tuple[dict, ...]

    def to_dict(self) -> dict:
        """JSON-ready payload for the HTTP API."""
        return {
            "rule_index": self.rule_index,
            "matched_rules": list(self.matched_rules),
            "expected_utility": self.expected_utility,
            "protected": self.protected,
            "intervention": list(self.intervention),
        }


class PrescriptionEngine:
    """Serve per-individual prescriptions from a compiled ruleset.

    Parameters
    ----------
    ruleset:
        The rules to serve.
    protected:
        Optional protected group enabling the Eq. 6 resolution path.
    schema:
        Optional dataset schema; its continuous attributes seed the
        index's numeric discrimination maps.
    cache_size:
        Maximum number of attribute profiles kept in the LRU cache
        (0 disables caching).
    """

    def __init__(
        self,
        ruleset: RuleSet,
        protected: ProtectedGroup | None = None,
        schema: Schema | None = None,
        cache_size: int = 1024,
    ) -> None:
        self.ruleset = ruleset
        self.protected = protected
        self.schema = schema
        numeric = (
            tuple(
                s.name for s in schema if s.kind is AttributeKind.CONTINUOUS
            )
            if schema is not None
            else None
        )
        self.index = CompiledRuleIndex(ruleset.rules, numeric_attributes=numeric)
        self._utilities = np.array([r.utility for r in ruleset], dtype=np.float64)
        self._utilities_p = np.array(
            [r.utility_protected for r in ruleset], dtype=np.float64
        )
        self._interventions: tuple[tuple[dict, ...], ...] = tuple(
            tuple(pattern_to_list(r.intervention)) for r in ruleset
        )
        protected_attrs = (
            protected.pattern.attributes if protected is not None else ()
        )
        self._cache_attributes = tuple(
            sorted(set(self.index.attributes) | set(protected_attrs))
        )
        self._cache: OrderedDict[tuple, Prescription] = OrderedDict()
        self._cache_size = max(0, int(cache_size))
        # Guards only the cache and its counters; matching and resolution
        # read immutable structures and run concurrently (the HTTP layer
        # serves one thread per connection against a shared engine).
        self._cache_lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    @classmethod
    def from_artifact(
        cls, artifact: ServingArtifact, cache_size: int = 1024
    ) -> "PrescriptionEngine":
        """Build an engine straight from a loaded artifact."""
        return cls(
            artifact.ruleset,
            protected=artifact.protected,
            schema=artifact.schema,
            cache_size=cache_size,
        )

    # -- single-individual path --------------------------------------------------

    def _is_protected(self, row: Mapping[str, object]) -> bool | None:
        if self.protected is None:
            return None
        if any(a not in row for a in self.protected.pattern.attributes):
            return None
        return bool(self.protected.pattern.matches_row(row))

    def _resolve(
        self, matched: Sequence[int], is_protected: bool | None
    ) -> Prescription:
        matched = tuple(int(i) for i in matched)
        if not matched:
            return Prescription(None, (), 0.0, is_protected, ())
        if is_protected:
            chosen = min(matched, key=lambda i: (self._utilities_p[i], i))
            utility = float(self._utilities_p[chosen])
        else:
            chosen = max(matched, key=lambda i: (self._utilities[i], -i))
            utility = float(self._utilities[chosen])
        return Prescription(
            rule_index=chosen,
            matched_rules=matched,
            expected_utility=utility,
            protected=is_protected,
            intervention=self._interventions[chosen],
        )

    def _cache_lookup(
        self, key: tuple | None, count_miss: bool = True
    ) -> Prescription | None:
        """One locked cache probe; a hit is always counted, a miss only
        when ``count_miss`` (the vectorized path defers its miss count to
        the insert so each profile contributes exactly one event)."""
        if key is None:
            return None
        with self._cache_lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._hits += 1
                self._cache.move_to_end(key)
                return cached
            if count_miss:
                self._misses += 1
            return None

    def _cache_put(
        self, key: tuple | None, result: Prescription, count_miss: bool = False
    ) -> None:
        if key is None:
            return
        with self._cache_lock:
            if count_miss:
                self._misses += 1
            self._cache[key] = result
            self._cache.move_to_end(key)
            if len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)

    def prescribe(self, individual: Mapping[str, object]) -> Prescription:
        """Resolve the prescription for one attribute profile (cached)."""
        key = self._cache_key(individual)
        cached = self._cache_lookup(key)
        if cached is not None:
            return cached
        result = self._resolve(
            self.index.match_indices(individual), self._is_protected(individual)
        )
        self._cache_put(key, result)
        return result

    def prescribe_batch(
        self, individuals: Sequence[Mapping[str, object]]
    ) -> list[Prescription]:
        """Resolve a list of attribute profiles (shares the LRU cache)."""
        return [self.prescribe(row) for row in individuals]

    # -- coalesced batch path ------------------------------------------------------

    def _vectorizable(self, row: Mapping[str, object]) -> bool:
        """Can ``row`` go through the table batch path with *provably* the
        same outcome as scalar dispatch?  Numeric discrimination plans
        coerce scalar values with ``float(...)`` — strings included — while
        a table column built from mixed raw values may type differently,
        so anything but a plain number routes to the scalar path."""
        for attribute, plan in self.index._plans.items():
            value = row[attribute]
            if isinstance(plan, _NumericPlan):
                if isinstance(value, bool) or not isinstance(
                    value, (int, float, np.integer, np.floating)
                ):
                    return False
        return True

    def prescribe_profiles(
        self, individuals: Sequence[Mapping[str, object]]
    ) -> list["Prescription | ServeError"]:
        """Resolve many *independent* profiles through one vectorized match.

        The serving tier's micro-batcher coalesces concurrent requests
        into one call; element ``i`` of the result is either the
        :class:`Prescription` or the :class:`ServeError` that per-profile
        :meth:`prescribe` dispatch would have produced for profile ``i``
        — one profile's bad attributes never fail its batch neighbours.

        Cached profiles are answered from the LRU; the remainder are
        grouped by attribute-key set, stacked into a
        :class:`~repro.tabular.table.Table`, and matched in one
        :meth:`CompiledRuleIndex.match_table` call.  Any profile the
        vectorized path cannot handle provably-identically falls back to
        scalar dispatch, so coalescing never changes an answer (pinned by
        the batching differential suite).
        """
        rows = list(individuals)
        out: list[Prescription | ServeError] = [None] * len(rows)  # type: ignore[list-item]
        keys = [self._cache_key(row) for row in rows]
        vector: list[int] = []
        for i, row in enumerate(rows):
            cached = self._cache_lookup(keys[i], count_miss=False)
            if cached is not None:
                out[i] = cached
            elif self.index.missing_attributes(row) or not self._vectorizable(row):
                out[i] = self._scalar_outcome(row)
            else:
                vector.append(i)

        groups: dict[tuple[str, ...], list[int]] = {}
        for i in vector:
            groups.setdefault(tuple(sorted(rows[i])), []).append(i)
        for indices in groups.values():
            if len(indices) == 1:
                out[indices[0]] = self._scalar_outcome(rows[indices[0]])
                continue
            try:
                table = Table.from_rows([rows[i] for i in indices])
                matched = self.index.match_table(table)  # (n_rules, n_rows)
            except Exception:
                # Column typing rejected the stack (mixed value types, ...):
                # serve each profile scalar rather than guess.
                for i in indices:
                    out[i] = self._scalar_outcome(rows[i])
                continue
            for column, i in enumerate(indices):
                row = rows[i]
                result = self._resolve(
                    tuple(int(r) for r in np.flatnonzero(matched[:, column])),
                    self._is_protected(row),
                )
                self._cache_put(keys[i], result, count_miss=True)
                out[i] = result
        return out

    def _scalar_outcome(
        self, row: Mapping[str, object]
    ) -> "Prescription | ServeError":
        try:
            return self.prescribe(row)
        except ServeError as exc:
            return exc

    # -- vectorized path ----------------------------------------------------------

    def prescribe_table(self, table: Table) -> list[Prescription]:
        """Vectorized resolution over every row of ``table``.

        Matching runs through the compiled index's batch path; rule
        resolution is a masked argmax/argmin per row.  Results are
        bit-identical to calling :meth:`prescribe` row by row.
        """
        matched = self.index.match_table(table)  # (n_rules, n_rows)
        n_rows = table.n_rows

        protected_mask: np.ndarray | None = None
        if self.protected is not None and all(
            a in table.schema for a in self.protected.pattern.attributes
        ):
            protected_mask = self.protected.mask(table)

        if not len(self.ruleset):
            return [
                Prescription(
                    None,
                    (),
                    0.0,
                    bool(protected_mask[i]) if protected_mask is not None else None,
                    (),
                )
                for i in range(n_rows)
            ]

        any_match = matched.any(axis=0)
        best = np.where(matched, self._utilities[:, None], -np.inf).argmax(axis=0)
        worst = np.where(matched, self._utilities_p[:, None], np.inf).argmin(axis=0)

        results: list[Prescription] = []
        for i in range(n_rows):
            is_protected = (
                bool(protected_mask[i]) if protected_mask is not None else None
            )
            if not any_match[i]:
                results.append(Prescription(None, (), 0.0, is_protected, ()))
                continue
            chosen = int(worst[i]) if is_protected else int(best[i])
            utility = float(
                self._utilities_p[chosen] if is_protected else self._utilities[chosen]
            )
            results.append(
                Prescription(
                    rule_index=chosen,
                    matched_rules=tuple(
                        int(j) for j in np.flatnonzero(matched[:, i])
                    ),
                    expected_utility=utility,
                    protected=is_protected,
                    intervention=self._interventions[chosen],
                )
            )
        return results

    # -- cache ------------------------------------------------------------------

    def _cache_key(self, individual: Mapping[str, object]) -> tuple | None:
        if self._cache_size == 0:
            return None
        key = tuple((a, individual.get(a)) for a in self._cache_attributes)
        try:
            hash(key)
        except TypeError:
            return None  # unhashable attribute value: skip the cache
        return key

    def cache_info(self) -> dict[str, int]:
        """Hit/miss counters and current size of the profile cache."""
        with self._cache_lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._cache),
                "max_size": self._cache_size,
            }

    def clear_cache(self) -> None:
        """Drop all cached profiles and reset the counters."""
        with self._cache_lock:
            self._cache.clear()
            self._hits = 0
            self._misses = 0
