"""Versioned (de)serialization of mined rulesets into deployable artifacts.

A mined :class:`~repro.rules.ruleset.RuleSet` lives only in memory; serving
it requires a durable, versioned representation.  The artifact format is
plain JSON so it can be inspected, diffed, and shipped without any library:

.. code-block:: json

    {
      "format": "faircap-ruleset",
      "version": 1,
      "metadata": {"dataset": "german", "variant": "Group fairness"},
      "schema": [{"name": "Age", "kind": "continuous", "role": "immutable"}],
      "protected": {"name": "non-single", "pattern": [...]},
      "rules": [{"grouping": [...], "intervention": [...], "utility": 1.0}]
    }

``schema`` and ``protected`` are optional: a bare ruleset round-trips on its
own (``RuleSet.to_json`` / ``RuleSet.from_json`` delegate here), while the
full :class:`ServingArtifact` carries everything the serving engine needs to
validate requests and resolve protected-group membership.

Numbers are serialized at full precision (Python's ``repr`` round-trips
floats exactly), and numpy scalars are converted to their plain Python
equivalents, so deserialized rules compare equal to the originals.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.mining.patterns import Operator, Pattern, Predicate
from repro.rules.protected import ProtectedGroup
from repro.rules.rule import PrescriptionRule
from repro.rules.ruleset import RuleSet
from repro.tabular.schema import AttributeSpec, Schema
from repro.utils.errors import ServeError

ARTIFACT_FORMAT = "faircap-ruleset"
ARTIFACT_VERSION = 1


def _plain(value: object) -> object:
    """Convert numpy scalars to plain Python values for JSON round-trips."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.str_):
        return str(value)
    return value


def _require(payload: Mapping, key: str, context: str) -> object:
    try:
        return payload[key]
    except (KeyError, TypeError):
        raise ServeError(f"{context} is missing required field {key!r}") from None


# -- predicates and patterns ----------------------------------------------------


def predicate_to_dict(predicate: Predicate) -> dict:
    """JSON-ready dictionary for a single predicate."""
    value = _plain(predicate.value)
    if not isinstance(value, (str, int, float, bool)) and value is not None:
        raise ServeError(
            f"predicate value {value!r} on {predicate.attribute!r} "
            "is not JSON-serializable"
        )
    return {
        "attribute": predicate.attribute,
        "operator": predicate.operator.value,
        "value": value,
    }


def predicate_from_dict(payload: Mapping) -> Predicate:
    """Rebuild a predicate from :func:`predicate_to_dict` output."""
    return Predicate(
        str(_require(payload, "attribute", "predicate")),
        Operator.parse(str(_require(payload, "operator", "predicate"))),
        _require(payload, "value", "predicate"),
    )


def pattern_to_list(pattern: Pattern) -> list[dict]:
    """JSON-ready predicate list for a pattern (canonical order)."""
    return [predicate_to_dict(p) for p in pattern]


def pattern_from_list(payload: object) -> Pattern:
    """Rebuild a pattern from :func:`pattern_to_list` output."""
    if not isinstance(payload, list):
        raise ServeError(f"pattern must be a list of predicates, got {payload!r}")
    return Pattern(predicate_from_dict(p) for p in payload)


# -- rules ----------------------------------------------------------------------


def rule_to_dict(rule: PrescriptionRule) -> dict:
    """JSON-ready dictionary for a rule.

    The raw :class:`CateResult` diagnostics are estimation-time artifacts
    and are deliberately dropped; rule equality ignores them.
    """
    return {
        "grouping": pattern_to_list(rule.grouping),
        "intervention": pattern_to_list(rule.intervention),
        "utility": float(rule.utility),
        "utility_protected": float(rule.utility_protected),
        "utility_non_protected": float(rule.utility_non_protected),
        "coverage_count": int(rule.coverage_count),
        "protected_coverage_count": int(rule.protected_coverage_count),
    }


def rule_from_dict(payload: Mapping) -> PrescriptionRule:
    """Rebuild a rule from :func:`rule_to_dict` output."""
    return PrescriptionRule(
        grouping=pattern_from_list(_require(payload, "grouping", "rule")),
        intervention=pattern_from_list(_require(payload, "intervention", "rule")),
        utility=float(_require(payload, "utility", "rule")),  # type: ignore[arg-type]
        utility_protected=float(
            _require(payload, "utility_protected", "rule")  # type: ignore[arg-type]
        ),
        utility_non_protected=float(
            _require(payload, "utility_non_protected", "rule")  # type: ignore[arg-type]
        ),
        coverage_count=int(
            _require(payload, "coverage_count", "rule")  # type: ignore[arg-type]
        ),
        protected_coverage_count=int(
            _require(payload, "protected_coverage_count", "rule")  # type: ignore[arg-type]
        ),
    )


# -- schema and protected group --------------------------------------------------


def schema_to_list(schema: Schema) -> list[dict]:
    """JSON-ready attribute-spec list for a schema."""
    return [
        {"name": s.name, "kind": s.kind.value, "role": s.role.value} for s in schema
    ]


def schema_from_list(payload: object) -> Schema:
    """Rebuild a schema from :func:`schema_to_list` output."""
    if not isinstance(payload, list):
        raise ServeError(f"schema must be a list of attribute specs, got {payload!r}")
    return Schema(
        AttributeSpec(
            str(_require(spec, "name", "attribute spec")),
            str(_require(spec, "kind", "attribute spec")),  # type: ignore[arg-type]
            str(_require(spec, "role", "attribute spec")),  # type: ignore[arg-type]
        )
        for spec in payload
    )


def protected_to_dict(protected: ProtectedGroup) -> dict:
    """JSON-ready dictionary for a protected group."""
    return {"name": protected.name, "pattern": pattern_to_list(protected.pattern)}


def protected_from_dict(payload: Mapping) -> ProtectedGroup:
    """Rebuild a protected group from :func:`protected_to_dict` output."""
    return ProtectedGroup(
        pattern_from_list(_require(payload, "pattern", "protected group")),
        name=str(payload.get("name", "protected")),
    )


# -- the artifact ----------------------------------------------------------------


@dataclass(frozen=True)
class ServingArtifact:
    """A deployable ruleset: rules plus the context serving needs.

    Attributes
    ----------
    ruleset:
        The mined prescription rules.
    schema:
        Optional attribute kinds/roles of the source dataset — lets the
        engine type-check request attributes.
    protected:
        Optional protected group — enables the Eq. 6 worst-case rule
        resolution for protected individuals.
    metadata:
        Free-form provenance (dataset name, variant, row counts, ...).
    """

    ruleset: RuleSet
    schema: Schema | None = None
    protected: ProtectedGroup | None = None
    metadata: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The versioned JSON-ready payload."""
        return {
            "format": ARTIFACT_FORMAT,
            "version": ARTIFACT_VERSION,
            "metadata": dict(self.metadata),
            "schema": schema_to_list(self.schema) if self.schema else None,
            "protected": (
                protected_to_dict(self.protected) if self.protected else None
            ),
            "rules": [rule_to_dict(r) for r in self.ruleset],
        }

    def to_json(self, indent: int | None = None) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ServingArtifact":
        """Validate and rebuild an artifact from its JSON-ready payload."""
        if not isinstance(payload, Mapping):
            raise ServeError(f"artifact must be a JSON object, got {payload!r}")
        fmt = payload.get("format")
        if fmt != ARTIFACT_FORMAT:
            raise ServeError(
                f"unknown artifact format {fmt!r} (expected {ARTIFACT_FORMAT!r})"
            )
        version = payload.get("version")
        if not isinstance(version, int) or version < 1:
            raise ServeError(f"bad artifact version {version!r}")
        if version > ARTIFACT_VERSION:
            raise ServeError(
                f"artifact version {version} is newer than supported "
                f"version {ARTIFACT_VERSION}"
            )
        rules_payload = _require(payload, "rules", "artifact")
        if not isinstance(rules_payload, list):
            raise ServeError("artifact 'rules' must be a list")
        schema_payload = payload.get("schema")
        protected_payload = payload.get("protected")
        metadata = payload.get("metadata") or {}
        if not isinstance(metadata, Mapping):
            raise ServeError("artifact 'metadata' must be an object")
        return cls(
            ruleset=RuleSet(rule_from_dict(r) for r in rules_payload),
            schema=(
                schema_from_list(schema_payload)
                if schema_payload is not None
                else None
            ),
            protected=(
                protected_from_dict(protected_payload)
                if protected_payload is not None
                else None
            ),
            metadata=dict(metadata),
        )

    @classmethod
    def from_json(cls, text: str) -> "ServingArtifact":
        """Parse a JSON string produced by :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ServeError(f"artifact is not valid JSON: {exc}") from None
        return cls.from_dict(payload)

    def save(self, path: str) -> None:
        """Write the artifact to ``path`` (pretty-printed)."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json(indent=2))
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "ServingArtifact":
        """Read an artifact previously written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())
