"""Production serving for mined prescription rulesets.

Takes a :class:`~repro.rules.ruleset.RuleSet` from the end of the FairCap
pipeline to live traffic, in four layers:

- :mod:`repro.serve.artifact` — versioned JSON persistence
  (:class:`ServingArtifact`): a mined ruleset becomes a deployable file;
- :mod:`repro.serve.index` — :class:`CompiledRuleIndex`: per-attribute
  discrimination maps matching an individual against the ruleset without
  scanning every rule, plus a vectorized batch path;
- :mod:`repro.serve.engine` — :class:`PrescriptionEngine`: resolves
  multiple matching rules with the paper's Eq. 5/6 utility semantics and
  caches repeated attribute profiles;
- :mod:`repro.serve.http` — a dependency-free ``http.server`` JSON API
  (``POST /prescribe``, ``GET /rules``, ``GET /health``).

Quickstart::

    from repro.serve import PrescriptionEngine, ServingArtifact

    artifact = ServingArtifact.load("ruleset.json")
    engine = PrescriptionEngine.from_artifact(artifact)
    print(engine.prescribe({"Country": "US", "Age": 31}))
"""

from repro.serve.artifact import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    ServingArtifact,
    pattern_from_list,
    pattern_to_list,
    predicate_from_dict,
    predicate_to_dict,
    protected_from_dict,
    protected_to_dict,
    rule_from_dict,
    rule_to_dict,
    schema_from_list,
    schema_to_list,
)
from repro.serve.engine import Prescription, PrescriptionEngine
from repro.serve.http import (
    PrescriptionServer,
    make_server,
    run_server,
)
from repro.serve.index import (
    CompiledRuleIndex,
    naive_match_row,
    naive_match_table,
)

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "ServingArtifact",
    "CompiledRuleIndex",
    "Prescription",
    "PrescriptionEngine",
    "PrescriptionServer",
    "make_server",
    "run_server",
    "naive_match_row",
    "naive_match_table",
    "predicate_to_dict",
    "predicate_from_dict",
    "pattern_to_list",
    "pattern_from_list",
    "rule_to_dict",
    "rule_from_dict",
    "schema_to_list",
    "schema_from_list",
    "protected_to_dict",
    "protected_from_dict",
]
