"""Production serving for mined prescription rulesets.

Takes a :class:`~repro.rules.ruleset.RuleSet` from the end of the FairCap
pipeline to live traffic, as a layered tier (router / service /
repository):

- :mod:`repro.serve.artifact` — versioned JSON persistence
  (:class:`ServingArtifact`): a mined ruleset becomes a deployable file;
- :mod:`repro.serve.registry` — :class:`ArtifactRegistry`: a directory of
  versioned artifacts with an ``ACTIVE`` pointer (publish / activate /
  rollback, all atomic);
- :mod:`repro.serve.index` — :class:`CompiledRuleIndex`: per-attribute
  discrimination maps matching an individual against the ruleset without
  scanning every rule, plus a vectorized batch path;
- :mod:`repro.serve.engine` — :class:`PrescriptionEngine`: resolves
  multiple matching rules with the paper's Eq. 5/6 utility semantics,
  caches repeated attribute profiles (thread-safe), and coalesces
  independent profiles into one vectorized match;
- :mod:`repro.serve.service` — :class:`PrescriptionService`: engine
  lifecycle behind an RCU-style pointer; hot reload swaps a complete
  immutable :class:`ServingState` so in-flight requests never see a torn
  generation;
- :mod:`repro.serve.batching` — :class:`MicroBatcher`: concurrent
  single-profile requests coalesced into one batch match;
- :mod:`repro.serve.http` — the dependency-free ``/v1`` HTTP API
  (``POST /v1/prescribe``, ``GET /v1/rules``, ``GET /v1/health``,
  ``GET /v1/metrics``, ``GET /v1/artifacts``,
  ``POST /v1/artifacts/activate``), configured by :class:`ServeConfig`;
- :mod:`repro.serve.config` / :mod:`repro.serve.schemas` — the frozen
  server configuration and the typed request/response schemas + uniform
  error envelope.

Quickstart::

    from repro.serve import PrescriptionEngine, ServingArtifact

    artifact = ServingArtifact.load("ruleset.json")
    engine = PrescriptionEngine.from_artifact(artifact)
    print(engine.prescribe({"Country": "US", "Age": 31}))

Full tier with versioned hot reload::

    from repro.serve import ArtifactRegistry, ServeConfig, run_server

    registry = ArtifactRegistry("artifacts/")
    registry.publish(artifact)
    run_server(config=ServeConfig(port=8080, artifact_dir="artifacts/"))
"""

from repro.serve.artifact import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    ServingArtifact,
    pattern_from_list,
    pattern_to_list,
    predicate_from_dict,
    predicate_to_dict,
    protected_from_dict,
    protected_to_dict,
    rule_from_dict,
    rule_to_dict,
    schema_from_list,
    schema_to_list,
)
from repro.serve.batching import MicroBatcher
from repro.serve.config import ServeConfig
from repro.serve.engine import Prescription, PrescriptionEngine
from repro.serve.http import (
    LEGACY_ALIASES,
    PrescriptionServer,
    make_server,
    run_server,
)
from repro.serve.index import (
    CompiledRuleIndex,
    naive_match_row,
    naive_match_table,
)
from repro.serve.registry import ArtifactRecord, ArtifactRegistry
from repro.serve.schemas import ApiError, error_envelope
from repro.serve.service import PrescriptionService, ServingState

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "LEGACY_ALIASES",
    "ApiError",
    "ArtifactRecord",
    "ArtifactRegistry",
    "CompiledRuleIndex",
    "MicroBatcher",
    "Prescription",
    "PrescriptionEngine",
    "PrescriptionServer",
    "PrescriptionService",
    "ServeConfig",
    "ServingArtifact",
    "ServingState",
    "error_envelope",
    "make_server",
    "run_server",
    "naive_match_row",
    "naive_match_table",
    "predicate_to_dict",
    "predicate_from_dict",
    "pattern_to_list",
    "pattern_from_list",
    "rule_to_dict",
    "rule_from_dict",
    "schema_to_list",
    "schema_from_list",
    "protected_to_dict",
    "protected_from_dict",
]
