"""Compiled rule index: match individuals against a ruleset without scanning.

Matching an individual naively costs one predicate evaluation per predicate
per rule.  The index compiles the ruleset once into per-attribute
*discrimination maps* so a lookup touches each attribute once:

- grouping predicates are deduplicated across rules (rules mined from the
  same Apriori item pool share most of their predicates), each distinct
  predicate getting an integer id;
- **categorical** attributes get a hash bucket per equality value
  (``value -> predicate ids``) plus a short inequality list;
- **numeric** attributes get a sorted threshold array per ordered operator,
  so the satisfied predicates are a ``searchsorted`` slice — ``O(log t)``
  per attribute instead of ``O(t)``;
- a rule matches iff *all* its predicates are satisfied, checked by counting
  satisfied predicate ids against the rule's requirement count (rules with
  an empty grouping pattern require nothing and always match).

The batch path (:meth:`CompiledRuleIndex.match_table`) evaluates each
distinct predicate once as a vectorized column mask and accumulates the same
counts over all rows at once — the bulk-scoring workhorse behind
``POST /prescribe`` with many individuals.

:func:`naive_match_row` / :func:`naive_match_table` are the reference
implementations the tests and benchmark compare against.
"""

from __future__ import annotations

from bisect import insort
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.mining.patterns import Operator, Pattern, Predicate
from repro.rules.rule import PrescriptionRule
from repro.tabular.table import Table
from repro.utils.errors import PatternError, ServeError

_ORDERED_OPS = (Operator.LT, Operator.GT, Operator.LE, Operator.GE)


def _is_numeric_value(value: object) -> bool:
    return isinstance(value, (bool, int, float, np.integer, np.floating))


class _NumericPlan:
    """Discrimination maps for one numeric attribute.

    Ordered operators keep ``(threshold, predicate id)`` pairs sorted by
    threshold; a lookup takes the ``searchsorted`` slice of satisfied ids.
    Equality/inequality use a float-keyed bucket and a short list.
    """

    def __init__(self) -> None:
        self._sorted: dict[Operator, list[tuple[float, int]]] = {
            op: [] for op in _ORDERED_OPS
        }
        self.eq_buckets: dict[float, list[int]] = {}
        self.ne_pairs: list[tuple[float, int]] = []
        # Built by freeze(): parallel (thresholds, pred ids) arrays per op.
        self._thresholds: dict[Operator, np.ndarray] = {}
        self._pred_ids: dict[Operator, np.ndarray] = {}

    def add(self, operator: Operator, value: object, pred_id: int) -> None:
        threshold = float(value)  # type: ignore[arg-type]
        if operator is Operator.EQ:
            self.eq_buckets.setdefault(threshold, []).append(pred_id)
        elif operator is Operator.NE:
            self.ne_pairs.append((threshold, pred_id))
        else:
            insort(self._sorted[operator], (threshold, pred_id))

    def freeze(self) -> None:
        for op, pairs in self._sorted.items():
            self._thresholds[op] = np.array(
                [t for t, __ in pairs], dtype=np.float64
            )
            self._pred_ids[op] = np.array([p for __, p in pairs], dtype=np.int64)

    def satisfied(self, value: object, out: list[int]) -> None:
        """Append the ids of predicates this attribute value satisfies."""
        x = float(value)  # type: ignore[arg-type]
        if x != x:  # NaN: every comparison is False except !=
            out.extend(pred_id for __, pred_id in self.ne_pairs)
            return
        out.extend(self.eq_buckets.get(x, ()))
        for threshold, pred_id in self.ne_pairs:
            if x != threshold:
                out.append(pred_id)
        # x < t  <=>  t > x: thresholds strictly right of x.
        lt = self._thresholds[Operator.LT]
        out.extend(self._pred_ids[Operator.LT][np.searchsorted(lt, x, "right"):])
        # x <= t <=>  t >= x.
        le = self._thresholds[Operator.LE]
        out.extend(self._pred_ids[Operator.LE][np.searchsorted(le, x, "left"):])
        # x > t  <=>  t < x: thresholds strictly left of x.
        gt = self._thresholds[Operator.GT]
        out.extend(self._pred_ids[Operator.GT][: np.searchsorted(gt, x, "left")])
        # x >= t <=>  t <= x.
        ge = self._thresholds[Operator.GE]
        out.extend(self._pred_ids[Operator.GE][: np.searchsorted(ge, x, "right")])


class _CategoricalPlan:
    """Discrimination maps for one categorical attribute."""

    def __init__(self) -> None:
        self.eq_buckets: dict[object, list[int]] = {}
        self.ne_pairs: list[tuple[object, int]] = []

    def add(self, operator: Operator, value: object, pred_id: int) -> None:
        if operator is Operator.EQ:
            self.eq_buckets.setdefault(value, []).append(pred_id)
        elif operator is Operator.NE:
            self.ne_pairs.append((value, pred_id))
        else:  # pragma: no cover - rejected at build time
            raise PatternError(
                f"ordered operator {operator.value!r} on categorical attribute"
            )

    def freeze(self) -> None:
        pass

    def satisfied(self, value: object, out: list[int]) -> None:
        """Append the ids of predicates this attribute value satisfies."""
        out.extend(self.eq_buckets.get(value, ()))
        for other, pred_id in self.ne_pairs:
            if value != other:
                out.append(pred_id)


class CompiledRuleIndex:
    """An immutable matching index over the grouping patterns of a ruleset.

    Parameters
    ----------
    rules:
        The prescription rules to index; rule order is preserved, and
        match results are boolean arrays aligned with it.
    numeric_attributes:
        Attributes to treat as numeric.  When omitted, an attribute is
        numeric iff every predicate value on it is a number — pass the
        schema's continuous attributes to override (e.g. a numeric
        attribute only ever compared by equality).
    """

    def __init__(
        self,
        rules: Sequence[PrescriptionRule],
        numeric_attributes: Iterable[str] | None = None,
    ) -> None:
        self.rules: tuple[PrescriptionRule, ...] = tuple(rules)
        forced_numeric = set(numeric_attributes or ())

        pred_ids: dict[Predicate, int] = {}
        rule_pred_lists: list[list[int]] = []
        for rule in self.rules:
            ids: list[int] = []
            for pred in rule.grouping:
                pred_id = pred_ids.get(pred)
                if pred_id is None:
                    pred_id = len(pred_ids)
                    pred_ids[pred] = pred_id
                ids.append(pred_id)
            rule_pred_lists.append(ids)

        self._predicates: tuple[Predicate, ...] = tuple(pred_ids)
        self._required = np.array(
            [len(ids) for ids in rule_pred_lists], dtype=np.int16
        )
        # predicate id -> array of rule indices containing it.
        containing: list[list[int]] = [[] for __ in self._predicates]
        for rule_index, ids in enumerate(rule_pred_lists):
            for pred_id in ids:
                containing[pred_id].append(rule_index)
        self._pred_rules: tuple[np.ndarray, ...] = tuple(
            np.array(rule_indices, dtype=np.int64) for rule_indices in containing
        )

        self._plans: dict[str, _NumericPlan | _CategoricalPlan] = {}
        by_attribute: dict[str, list[tuple[Predicate, int]]] = {}
        for pred, pred_id in pred_ids.items():
            by_attribute.setdefault(pred.attribute, []).append((pred, pred_id))
        for attribute, entries in by_attribute.items():
            numeric = attribute in forced_numeric or all(
                _is_numeric_value(pred.value) for pred, __ in entries
            )
            ordered = [p for p, __ in entries if p.operator in _ORDERED_OPS]
            if ordered and not numeric:
                raise ServeError(
                    f"attribute {attribute!r} mixes ordered comparisons with "
                    "non-numeric values; cannot compile a discrimination map"
                )
            plan: _NumericPlan | _CategoricalPlan = (
                _NumericPlan() if numeric else _CategoricalPlan()
            )
            for pred, pred_id in entries:
                plan.add(pred.operator, pred.value, pred_id)
            plan.freeze()
            self._plans[attribute] = plan

    def __len__(self) -> int:
        return len(self.rules)

    @property
    def n_predicates(self) -> int:
        """Number of distinct grouping predicates across all rules."""
        return len(self._predicates)

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attributes referenced by any grouping pattern, sorted."""
        return tuple(sorted(self._plans))

    def missing_attributes(self, row: Mapping[str, object]) -> tuple[str, ...]:
        """Indexed attributes absent from ``row`` (sorted)."""
        return tuple(sorted(a for a in self._plans if a not in row))

    # -- matching ---------------------------------------------------------------

    def match_row(self, row: Mapping[str, object]) -> np.ndarray:
        """Boolean match vector (one entry per rule) for one individual.

        Every indexed attribute must be present in ``row``; a
        :class:`~repro.utils.errors.ServeError` names the missing ones.
        """
        missing = self.missing_attributes(row)
        if missing:
            raise ServeError(f"individual is missing attributes: {list(missing)}")
        satisfied: list[int] = []
        for attribute, plan in self._plans.items():
            value = row[attribute]
            try:
                plan.satisfied(value, satisfied)
            except (TypeError, ValueError):
                raise ServeError(
                    f"attribute {attribute!r}: cannot compare value {value!r}"
                ) from None
        counts = np.zeros(len(self.rules), dtype=np.int16)
        for pred_id in satisfied:
            counts[self._pred_rules[pred_id]] += 1
        return counts == self._required

    def match_indices(self, row: Mapping[str, object]) -> tuple[int, ...]:
        """Indices of the rules matching ``row``, in rule order."""
        return tuple(int(i) for i in np.flatnonzero(self.match_row(row)))

    def match_table(self, table: Table) -> np.ndarray:
        """Boolean match matrix of shape ``(n_rules, n_rows)``.

        Each distinct predicate is evaluated once as a vectorized column
        mask and its contribution accumulated into all containing rules.
        """
        n_rows = table.n_rows
        counts = np.zeros((len(self.rules), n_rows), dtype=np.int16)
        for pred, rule_indices in zip(self._predicates, self._pred_rules):
            mask = pred.mask(table)
            counts[rule_indices] += mask.astype(np.int16)
        return counts == self._required[:, None]


# -- naive references ------------------------------------------------------------


def naive_match_row(
    rules: Sequence[PrescriptionRule], row: Mapping[str, object]
) -> np.ndarray:
    """Per-rule predicate scan over one individual (reference semantics)."""
    return np.array([rule.grouping.matches_row(row) for rule in rules], dtype=bool)


def naive_match_table(rules: Sequence[PrescriptionRule], table: Table) -> np.ndarray:
    """Per-rule full-mask evaluation over a table (reference semantics)."""
    if not rules:
        return np.zeros((0, table.n_rows), dtype=bool)
    return np.stack([rule.grouping.mask(table) for rule in rules])
