"""Versioned on-disk artifact registry: the serving tier's repository layer.

A registry is one directory owning every deployable ruleset version plus an
``ACTIVE`` pointer naming the one being served:

.. code-block:: text

    <artifact_dir>/
        v000001.json     # ServingArtifact, immutable once published
        v000002.json
        ACTIVE           # {"version": 2, "previous": 1}

Contracts:

- **Versions are immutable and monotonic.**  :meth:`ArtifactRegistry.publish`
  assigns ``max(existing) + 1`` and never overwrites; a version file, once
  written, is never mutated.
- **Every write is atomic** (temp file in the same directory +
  :func:`os.replace`), so a crashed publisher can leave a stray ``*.tmp``
  at worst — never a half-written version or pointer.  Stray temp files are
  ignored by listing and cleaned opportunistically.
- **Torn artifacts are rejected cleanly.**  :meth:`get` and
  :meth:`activate` validate the artifact through
  :meth:`ServingArtifact.from_json`; a truncated or unparseable file raises
  :class:`~repro.serve.schemas.ApiError` with status 409
  (``artifact_invalid``) — the serving tier maps it to a client-visible
  conflict, never a 500, and the previously active version keeps serving.
- **Activation is a pointer swap.**  The pointer records the previous
  version, so :meth:`rollback` is one atomic step back.

The registry is safe for concurrent readers with one writer per operation
(an internal lock serializes publish/activate within a process; cross-process
safety comes from the atomicity of ``os.replace``).
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.serve.artifact import ServingArtifact
from repro.serve.schemas import ApiError

_VERSION_FILE = re.compile(r"^v(\d{6})\.json$")
_POINTER_NAME = "ACTIVE"


def _version_filename(version: int) -> str:
    return f"v{version:06d}.json"


@dataclass(frozen=True)
class ArtifactRecord:
    """A registry listing entry (cheap: no artifact parse)."""

    version: int
    path: Path
    size_bytes: int


class ArtifactRegistry:
    """List / get / publish / activate / rollback versioned artifacts."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    # -- listing ----------------------------------------------------------------

    def list_versions(self) -> list[ArtifactRecord]:
        """All published versions, ascending (stray temp files ignored)."""
        records = []
        for entry in self.root.iterdir():
            match = _VERSION_FILE.match(entry.name)
            if match is None:
                continue
            records.append(
                ArtifactRecord(
                    version=int(match.group(1)),
                    path=entry,
                    size_bytes=entry.stat().st_size,
                )
            )
        return sorted(records, key=lambda r: r.version)

    def latest_version(self) -> int | None:
        """The highest published version, or ``None`` when empty."""
        records = self.list_versions()
        return records[-1].version if records else None

    def path_for(self, version: int) -> Path:
        return self.root / _version_filename(version)

    # -- read -------------------------------------------------------------------

    def get(self, version: int) -> ServingArtifact:
        """Load and validate one version.

        Raises :class:`ApiError` 404 for an absent version and 409 for a
        file that exists but does not parse as a valid artifact (torn
        write, manual corruption) — never an unhandled exception.
        """
        path = self.path_for(version)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise ApiError.not_found(
                f"artifact version {version} not found in {self.root}"
            ) from None
        except OSError as exc:
            raise ApiError.conflict(
                f"artifact version {version} is unreadable: {exc}"
            ) from None
        try:
            return ServingArtifact.from_json(text)
        except Exception as exc:
            # ServeError (bad JSON / bad schema) or anything a hand-edited
            # file can throw: the artifact is torn or invalid, not the
            # server's fault — surface it as a conflict.
            raise ApiError.conflict(
                f"artifact version {version} is invalid: {exc}"
            ) from None

    # -- write ------------------------------------------------------------------

    def _atomic_write(self, path: Path, text: str) -> None:
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def publish(self, artifact: ServingArtifact) -> int:
        """Write ``artifact`` as the next version; returns its number."""
        with self._lock:
            version = (self.latest_version() or 0) + 1
            self._atomic_write(
                self.path_for(version), artifact.to_json(indent=2) + "\n"
            )
            return version

    # -- activation -------------------------------------------------------------

    def _read_pointer(self) -> dict:
        try:
            raw = (self.root / _POINTER_NAME).read_text(encoding="utf-8")
        except FileNotFoundError:
            return {}
        try:
            pointer = json.loads(raw)
        except json.JSONDecodeError:
            return {}  # torn pointer reads as "nothing active"; re-activate
        return pointer if isinstance(pointer, dict) else {}

    def active_version(self) -> int | None:
        """The version named by the ``ACTIVE`` pointer (``None`` if unset)."""
        version = self._read_pointer().get("version")
        return version if isinstance(version, int) else None

    def previous_version(self) -> int | None:
        """The version active before the last activation (rollback target)."""
        previous = self._read_pointer().get("previous")
        return previous if isinstance(previous, int) else None

    def activate(self, version: int) -> ServingArtifact:
        """Validate ``version`` and swap the ``ACTIVE`` pointer to it.

        The artifact is fully loaded *before* the pointer moves, so an
        invalid version can never become active; returns the loaded
        artifact so callers build the new serving state from the exact
        bytes that were validated.
        """
        artifact = self.get(version)  # 404/409 before any pointer motion
        with self._lock:
            pointer = {"version": version, "previous": self.active_version()}
            self._atomic_write(
                self.root / _POINTER_NAME, json.dumps(pointer) + "\n"
            )
        return artifact

    def rollback(self) -> tuple[int, ServingArtifact]:
        """Re-activate the previously active version.

        Returns ``(version, artifact)``.  Raises :class:`ApiError` 409
        when there is no previous version on record.
        """
        previous = self.previous_version()
        if previous is None:
            raise ApiError(409, "artifact_invalid", "no previous version to roll back to")
        return previous, self.activate(previous)
