"""Pattern language and pattern mining (S2, S7, S8).

- :mod:`~repro.mining.patterns` — predicates and conjunctive patterns
  (Def. 4.1) with vectorised coverage (Def. 4.2),
- :mod:`~repro.mining.apriori` — Apriori frequent grouping-pattern mining
  (Step 1 of FairCap, Sec. 5.1),
- :mod:`~repro.mining.lattice` — the intervention-pattern lattice with
  positive-effect pruning (Step 2 scaffolding, Sec. 5.2).
"""

from repro.mining.patterns import Operator, Predicate, Pattern
from repro.mining.apriori import AprioriResult, FrequentPattern, apriori
from repro.mining.lattice import LatticeNode, traverse_lattice

__all__ = [
    "Operator",
    "Predicate",
    "Pattern",
    "AprioriResult",
    "FrequentPattern",
    "apriori",
    "LatticeNode",
    "traverse_lattice",
]
