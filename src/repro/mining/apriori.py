"""Apriori frequent-pattern mining (Step 1 of FairCap, Sec. 5.1).

The paper mines grouping patterns with the Apriori algorithm of Agrawal &
Srikant [5]: a pattern is *frequent* when it covers at least a ``min_support``
fraction of the rows, and every sub-pattern of a frequent pattern is frequent
(anti-monotonicity), which drives the level-wise candidate generation.

Items here are single-attribute :class:`~repro.mining.patterns.Pattern`
objects — an equality predicate per categorical value, or a quantile-bin
range (two predicates) per continuous attribute — so a level-``k`` itemset is
a conjunction over ``k`` distinct attributes.  Coverage masks are cached as
boolean arrays, making support counting one vectorised AND per candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import numpy as np

from repro.mining.bitsets import popcount
from repro.mining.patterns import Operator, Pattern, Predicate
from repro.tabular.column import CategoricalColumn, NumericColumn
from repro.tabular.table import Table
from repro.utils.errors import PatternError


@dataclass(frozen=True)
class FrequentPattern:
    """A mined pattern with its support.

    Attributes
    ----------
    pattern:
        The conjunction of items.
    support_count:
        Number of covered rows.
    support:
        Covered fraction of the table.
    """

    pattern: Pattern
    support_count: int
    support: float

    @property
    def size(self) -> int:
        """Number of attributes in the pattern (the Apriori level)."""
        return len(self.pattern.attributes)


@dataclass(frozen=True)
class AprioriResult:
    """All frequent patterns found, plus run metadata."""

    patterns: tuple[FrequentPattern, ...]
    min_support: float
    n_rows: int
    n_items: int

    def at_level(self, level: int) -> tuple[FrequentPattern, ...]:
        """Frequent patterns with exactly ``level`` attributes."""
        return tuple(p for p in self.patterns if p.size == level)

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self):
        return iter(self.patterns)


def build_items(
    table: Table,
    attributes: Sequence[str],
    continuous_bins: int = 4,
    max_values_per_attribute: int | None = None,
) -> list[Pattern]:
    """Build the single-attribute item patterns for Apriori.

    Categorical attributes yield one equality item per occurring value
    (most-frequent first, truncated at ``max_values_per_attribute``);
    continuous attributes yield ``continuous_bins`` quantile-range items
    covering the full observed range.
    """
    items: list[Pattern] = []
    for name in attributes:
        column = table.column(name)
        if isinstance(column, CategoricalColumn):
            counts = column.value_counts()
            ranked = sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0])))
            if max_values_per_attribute is not None:
                ranked = ranked[:max_values_per_attribute]
            items.extend(
                Pattern([Predicate.eq(name, value)]) for value, __ in ranked
            )
        elif isinstance(column, NumericColumn):
            values = column.decode()
            if values.size == 0:
                continue
            quantiles = np.linspace(0, 1, continuous_bins + 1)
            edges = np.unique(np.quantile(values, quantiles))
            if edges.size < 2:
                # Constant column: a single trivially-true range item.
                items.append(
                    Pattern([Predicate(name, Operator.EQ, float(edges[0]))])
                )
                continue
            for i in range(edges.size - 1):
                low, high = float(edges[i]), float(edges[i + 1])
                upper_op = Operator.LE if i == edges.size - 2 else Operator.LT
                items.append(
                    Pattern(
                        [
                            Predicate(name, Operator.GE, low),
                            Predicate(name, upper_op, high),
                        ]
                    )
                )
        else:  # pragma: no cover - column types are closed
            raise PatternError(f"unsupported column type for {name!r}")
    return items


def apriori(
    table: Table,
    attributes: Sequence[str] | None = None,
    min_support: float = 0.1,
    max_length: int | None = 3,
    items: Sequence[Pattern] | None = None,
    continuous_bins: int = 4,
    max_values_per_attribute: int | None = None,
) -> AprioriResult:
    """Mine all frequent conjunctions over distinct attributes.

    Parameters
    ----------
    table:
        The database instance ``D``.
    attributes:
        Attributes to mine over (default: all columns).  Ignored when
        ``items`` is given.
    min_support:
        Minimum covered fraction (the paper's Apriori threshold ``τ``,
        default 0.1 per Sec. 6).
    max_length:
        Maximum number of attributes per pattern (``None`` = unbounded).
    items:
        Pre-built item patterns (each over a single attribute); overrides
        ``attributes``.
    continuous_bins, max_values_per_attribute:
        Forwarded to :func:`build_items`.

    Returns
    -------
    AprioriResult
        Frequent patterns of every level, sorted by (level, support desc).
    """
    if not 0.0 < min_support <= 1.0:
        raise PatternError(f"min_support must be in (0, 1], got {min_support}")
    if table.n_rows == 0:
        return AprioriResult((), min_support, 0, 0)
    if items is None:
        if attributes is None:
            attributes = table.column_names
        items = build_items(
            table,
            attributes,
            continuous_bins=continuous_bins,
            max_values_per_attribute=max_values_per_attribute,
        )
    for item in items:
        if len(item.attributes) != 1:
            raise PatternError(
                f"Apriori items must cover exactly one attribute, got {item}"
            )

    n = table.n_rows
    threshold = min_support * n
    if getattr(table, "is_sharded", False):
        # Out-of-core tables mine over packed uint64 words (n/8 bytes per
        # mask instead of n): predicate words are built in one pass over the
        # shards, candidate ANDs and popcount supports are exact, and no
        # whole-table boolean mask is ever materialised.
        table.ensure_predicate_words(
            [predicate for item in items for predicate in item.predicates]
        )
        item_masks = [table.pattern_words(item) for item in items]
        count_of = popcount
    else:
        item_masks = [item.mask(table) for item in items]

        def count_of(mask: np.ndarray) -> int:
            return int(mask.sum())

    item_attrs = [item.attributes[0] for item in items]

    found: list[FrequentPattern] = []
    # Level 1.
    level_sets: dict[frozenset[int], np.ndarray] = {}
    for idx, mask in enumerate(item_masks):
        count = count_of(mask)
        if count >= threshold:
            level_sets[frozenset((idx,))] = mask
            found.append(FrequentPattern(items[idx], count, count / n))

    level = 1
    while level_sets and (max_length is None or level < max_length):
        next_sets: dict[frozenset[int], np.ndarray] = {}
        keys = sorted(level_sets, key=lambda s: tuple(sorted(s)))
        seen: set[frozenset[int]] = set()
        for a_key, b_key in combinations(keys, 2):
            union = a_key | b_key
            if len(union) != level + 1 or union in seen:
                continue
            seen.add(union)
            # One item per attribute.
            attrs = [item_attrs[i] for i in union]
            if len(set(attrs)) != len(attrs):
                continue
            # Anti-monotone pruning: all level-k subsets must be frequent.
            if any(
                frozenset(subset) not in level_sets
                for subset in combinations(sorted(union), level)
            ):
                continue
            new_index = next(iter(union - a_key))
            mask = level_sets[a_key] & item_masks[new_index]
            count = count_of(mask)
            if count >= threshold:
                next_sets[union] = mask
                pattern = Pattern(
                    [pred for i in sorted(union) for pred in items[i].predicates]
                )
                found.append(FrequentPattern(pattern, count, count / n))
        level_sets = next_sets
        level += 1

    found.sort(key=lambda fp: (fp.size, -fp.support, str(fp.pattern)))
    return AprioriResult(tuple(found), min_support, n, len(items))
