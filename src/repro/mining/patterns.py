"""Predicates and conjunctive patterns (Definitions 4.1 and 4.2).

A predicate is ``attribute op value`` with
``op ∈ {=, ≠, <, >, ≤, ≥}``; a pattern is a conjunction of predicates.
Patterns evaluate to boolean row masks over a :class:`~repro.tabular.Table`,
so coverage is a single vectorised pass.

Patterns are immutable, hashable and canonically ordered (sorted by
attribute, operator, value text), so two patterns with the same predicates in
different construction order compare equal — which the Apriori and lattice
layers rely on for deduplication.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.tabular.table import Table
from repro.utils.errors import PatternError


class Operator(str, Enum):
    """The six comparison operators of Def. 4.1."""

    EQ = "="
    NE = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="

    @classmethod
    def parse(cls, text: str) -> "Operator":
        """Parse an operator from its symbol (``'≠'``/``'≤'``/``'≥'`` accepted)."""
        aliases = {"==": "=", "≠": "!=", "≤": "<=", "≥": ">=", "<>": "!="}
        text = aliases.get(text, text)
        try:
            return cls(text)
        except ValueError:
            raise PatternError(f"unknown operator {text!r}") from None


_COLUMN_METHOD: dict[Operator, str] = {
    Operator.EQ: "eq",
    Operator.NE: "ne",
    Operator.LT: "lt",
    Operator.GT: "gt",
    Operator.LE: "le",
    Operator.GE: "ge",
}

_SCALAR_CHECK: dict[Operator, Callable[[object, object], bool]] = {
    Operator.EQ: lambda a, b: a == b,
    Operator.NE: lambda a, b: a != b,
    Operator.LT: lambda a, b: a < b,  # type: ignore[operator]
    Operator.GT: lambda a, b: a > b,  # type: ignore[operator]
    Operator.LE: lambda a, b: a <= b,  # type: ignore[operator]
    Operator.GE: lambda a, b: a >= b,  # type: ignore[operator]
}


@dataclass(frozen=True)
class Predicate:
    """A single comparison ``attribute op value``.

    Examples
    --------
    >>> Predicate("Country", Operator.EQ, "US")
    Predicate(Country = US)
    """

    attribute: str
    operator: Operator
    value: object

    def __post_init__(self) -> None:
        if not self.attribute:
            raise PatternError("predicate attribute must be non-empty")
        object.__setattr__(self, "operator", Operator.parse(str(self.operator.value))
                           if isinstance(self.operator, Operator)
                           else Operator.parse(str(self.operator)))

    @classmethod
    def eq(cls, attribute: str, value: object) -> "Predicate":
        """Shorthand for an equality predicate."""
        return cls(attribute, Operator.EQ, value)

    def mask(self, table: Table) -> np.ndarray:
        """Boolean mask of the rows of ``table`` satisfying the predicate."""
        if getattr(table, "is_sharded", False):
            # Out-of-core tables evaluate per shard and cache packed words
            # (bit-identical to the in-RAM evaluation; see
            # repro.datasets.sharded).
            return table.predicate_mask(self)
        column = table.column(self.attribute)
        method = getattr(column, _COLUMN_METHOD[self.operator])
        return method(self.value)

    def matches_row(self, row: dict[str, object]) -> bool:
        """Evaluate the predicate against a single row dictionary."""
        if self.attribute not in row:
            raise PatternError(f"row lacks attribute {self.attribute!r}")
        try:
            return _SCALAR_CHECK[self.operator](row[self.attribute], self.value)
        except TypeError as exc:
            raise PatternError(
                f"cannot compare {row[self.attribute]!r} {self.operator.value} "
                f"{self.value!r}: {exc}"
            ) from None

    def _sort_key(self) -> tuple[str, str, str]:
        return (self.attribute, self.operator.value, str(self.value))

    def __repr__(self) -> str:
        return f"Predicate({self.attribute} {self.operator.value} {self.value})"

    def __str__(self) -> str:
        return f"{self.attribute} {self.operator.value} {self.value}"


class Pattern:
    """A conjunction of predicates (Def. 4.1).

    The empty pattern is allowed and covers every row (it plays the role of
    "the entire data" when a baseline's IF clause is used as an intervention
    pattern, Sec. 7.1).

    Two predicates on the same attribute are allowed in general (e.g. a range
    ``x > 2 AND x < 9``) but contradictory equality predicates such as
    ``x = 1 AND x = 2`` are rejected early because their coverage is provably
    empty.
    """

    def __init__(self, predicates: Iterable[Predicate] = ()) -> None:
        ordered = sorted(predicates, key=Predicate._sort_key)
        deduped: list[Predicate] = []
        for pred in ordered:
            if not deduped or deduped[-1] != pred:
                deduped.append(pred)
        self.predicates: tuple[Predicate, ...] = tuple(deduped)
        self._check_consistency()

    def _check_consistency(self) -> None:
        eq_values: dict[str, object] = {}
        for pred in self.predicates:
            if pred.operator is Operator.EQ:
                if pred.attribute in eq_values and eq_values[pred.attribute] != pred.value:
                    raise PatternError(
                        f"contradictory equalities on {pred.attribute!r}: "
                        f"{eq_values[pred.attribute]!r} vs {pred.value!r}"
                    )
                eq_values[pred.attribute] = pred.value

    # -- constructors -----------------------------------------------------------

    @classmethod
    def of(cls, **equalities: object) -> "Pattern":
        """Build a pattern of equality predicates from keyword arguments.

        >>> Pattern.of(Country="US", Role="Designer").attributes
        ('Country', 'Role')
        """
        return cls(Predicate.eq(name, value) for name, value in equalities.items())

    @classmethod
    def empty(cls) -> "Pattern":
        """The empty conjunction (covers all rows)."""
        return cls(())

    # -- structure ------------------------------------------------------------

    @property
    def attributes(self) -> tuple[str, ...]:
        """Distinct attributes mentioned, sorted (memoised per instance)."""
        cached = self.__dict__.get("_attributes")
        if cached is None:
            cached = tuple(sorted({p.attribute for p in self.predicates}))
            self.__dict__["_attributes"] = cached
        return cached

    def is_empty(self) -> bool:
        """Whether this is the empty conjunction."""
        return not self.predicates

    def __len__(self) -> int:
        return len(self.predicates)

    def __iter__(self) -> Iterator[Predicate]:
        return iter(self.predicates)

    def conjoin(self, other: "Pattern | Predicate") -> "Pattern":
        """Return the conjunction of this pattern with ``other``."""
        if isinstance(other, Predicate):
            extra: tuple[Predicate, ...] = (other,)
        else:
            extra = other.predicates
        return Pattern(self.predicates + extra)

    def __and__(self, other: "Pattern | Predicate") -> "Pattern":
        return self.conjoin(other)

    def restricted_to(self, attributes: Iterable[str]) -> "Pattern":
        """Return the sub-pattern of predicates over the given attributes."""
        allowed = set(attributes)
        return Pattern(p for p in self.predicates if p.attribute in allowed)

    def is_over(self, attributes: Iterable[str]) -> bool:
        """Whether every predicate's attribute is in ``attributes``.

        Used to enforce Def. 4.3: grouping patterns over immutable attributes
        only, intervention patterns over mutable attributes only.
        """
        allowed = set(attributes)
        return all(p.attribute in allowed for p in self.predicates)

    def subsumes(self, other: "Pattern") -> bool:
        """Whether ``other`` contains every predicate of this pattern."""
        return set(self.predicates) <= set(other.predicates)

    # -- evaluation -------------------------------------------------------------

    def mask(self, table: Table) -> np.ndarray:
        """Boolean coverage mask over ``table`` (Def. 4.2).

        The empty pattern covers every row.
        """
        if getattr(table, "is_sharded", False):
            return table.pattern_mask(self)
        result = np.ones(table.n_rows, dtype=bool)
        for pred in self.predicates:
            result &= pred.mask(table)
            if not result.any():
                break
        return result

    def coverage(self, table: Table) -> int:
        """Number of covered rows, ``|Coverage(P)|``."""
        return int(self.mask(table).sum())

    def coverage_fraction(self, table: Table) -> float:
        """Covered fraction of the table (0 for an empty table)."""
        if table.n_rows == 0:
            return 0.0
        return self.coverage(table) / table.n_rows

    def matches_row(self, row: dict[str, object]) -> bool:
        """Evaluate the conjunction against a single row dictionary."""
        return all(p.matches_row(row) for p in self.predicates)

    # -- identity -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self.predicates == other.predicates

    def __hash__(self) -> int:
        return hash(self.predicates)

    def __repr__(self) -> str:
        if not self.predicates:
            return "Pattern(TRUE)"
        inner = " AND ".join(str(p) for p in self.predicates)
        return f"Pattern({inner})"

    def __str__(self) -> str:
        if not self.predicates:
            return "TRUE"
        return " AND ".join(str(p) for p in self.predicates)
