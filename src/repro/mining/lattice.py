"""Top-down lattice traversal with parent-based pruning (Sec. 5.2).

Step 2 of FairCap searches the lattice of intervention patterns: nodes are
conjunctions of single-attribute items, and an edge connects ``P1`` to ``P2``
when ``P2`` adds one predicate to ``P1``.  The paper materialises a node only
when *all of its parents* passed the filter (there: positive CATE), arguing
that combining positive-effect treatments is likely to stay positive.

This module implements the traversal generically: callers provide the items
and an ``evaluate`` callback that decides, per pattern, whether the node is
*kept* (expandable) and attaches an arbitrary payload (e.g. a
:class:`~repro.causal.estimators.CateResult`) — or an ``evaluate_many``
callback that consumes a whole level at once (the batched FWL engine's entry
point).  The FairCap-specific scoring lives in
:mod:`repro.core.intervention`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Sequence

from repro.mining.patterns import Pattern
from repro.utils.errors import PatternError

Evaluation = tuple[bool, object]
"""(keep, payload): keep=True lets the node's supersets be explored."""


@dataclass(frozen=True)
class LatticeNode:
    """A materialised lattice node.

    Attributes
    ----------
    pattern:
        The intervention pattern at this node.
    level:
        Number of items combined (1 = single predicate).
    keep:
        Whether the evaluation kept the node (e.g. positive CATE).
    payload:
        Whatever ``evaluate`` attached (estimates, utilities, ...).
    """

    pattern: Pattern
    level: int
    keep: bool
    payload: object


def traverse_lattice(
    items: Sequence[Pattern],
    evaluate: Callable[[Pattern], Evaluation] | None = None,
    max_level: int = 2,
    max_nodes: int | None = None,
    executor=None,
    evaluate_many: Callable[[list[Pattern]], list[Evaluation]] | None = None,
) -> list[LatticeNode]:
    """Materialise the lattice top-down with all-parents-kept pruning.

    Parameters
    ----------
    items:
        Single-attribute item patterns (the lattice's level-1 atoms).
    evaluate:
        Callback returning ``(keep, payload)`` for a candidate pattern.
        ``keep=False`` prunes the node's entire up-set from exploration
        (it is still reported in the result with ``keep=False``).
        May be omitted when ``evaluate_many`` is given.
    max_level:
        Deepest level to explore (the paper uses small treatments;
        level 2 is the default as in CauSumX).
    max_nodes:
        Optional hard cap on materialised nodes (safety valve for
        benchmarks); ``None`` = unlimited.
    executor:
        Optional *in-process* :class:`~repro.parallel.executors.Executor`
        (serial or thread) used to evaluate each level's candidate batch
        concurrently.  A level's candidates are fully determined by the
        previous levels' keeps, and within-level evaluations are mutually
        independent, so batching preserves the serial traversal exactly:
        nodes are appended in candidate-generation order regardless of
        completion order.  Process executors are ignored (silent serial
        fallback): ``evaluate`` is typically a closure, which cannot cross
        a process boundary — process-level parallelism belongs at the
        grouping-pattern fan-out (:mod:`repro.parallel.mining`).  Ignored
        when ``evaluate_many`` is given.
    evaluate_many:
        Batch variant of ``evaluate``: receives one whole level's candidate
        patterns and returns their evaluations in order.  Takes precedence
        over ``evaluate``/``executor`` — this is how the batched FWL
        estimation engine (:mod:`repro.causal.batch`) consumes a level in
        one GEMM instead of one OLS per candidate.  The traversal is
        unchanged: candidate generation, ordering, and pruning are
        identical to the per-pattern path.

    Returns
    -------
    list[LatticeNode]
        Every node that was materialised (kept or not), level by level.
    """
    if evaluate is None and evaluate_many is None:
        raise PatternError("traverse_lattice needs evaluate or evaluate_many")
    for item in items:
        if len(item.attributes) != 1:
            raise PatternError(
                f"lattice items must cover exactly one attribute, got {item}"
            )

    if executor is not None and getattr(executor, "kind", "serial") == "process":
        executor = None  # closures cannot cross a process boundary

    nodes: list[LatticeNode] = []
    kept_sets: dict[frozenset[int], Pattern] = {}
    item_attrs = [item.attributes[0] for item in items]

    def evaluate_batch(patterns: list[Pattern]) -> list[Evaluation]:
        if evaluate_many is not None:
            return evaluate_many(patterns)
        if executor is None or len(patterns) <= 1:
            return [evaluate(p) for p in patterns]
        return executor.map(evaluate, patterns)

    def materialise_level(
        candidates: list[tuple[frozenset[int], Pattern]], level: int
    ) -> tuple[list[frozenset[int]], bool]:
        """Evaluate one level's candidates; True in slot 2 = cap reached."""
        truncated = False
        if max_nodes is not None:
            remaining = max_nodes - len(nodes)
            if len(candidates) > remaining:
                candidates = candidates[:remaining]
                truncated = True
        evaluations = evaluate_batch([pattern for _, pattern in candidates])
        kept_keys: list[frozenset[int]] = []
        for (key, pattern), (keep, payload) in zip(candidates, evaluations):
            nodes.append(LatticeNode(pattern, level, keep, payload))
            if keep:
                kept_sets[key] = pattern
                kept_keys.append(key)
        return kept_keys, truncated

    level1 = [(frozenset((idx,)), item) for idx, item in enumerate(items)]
    current_keys, truncated = materialise_level(level1, 1)
    if truncated:
        return nodes

    level = 1
    while current_keys and level < max_level:
        candidates: list[tuple[frozenset[int], Pattern]] = []
        seen: set[frozenset[int]] = set()
        ordered = sorted(current_keys, key=lambda s: tuple(sorted(s)))
        for a_key, b_key in combinations(ordered, 2):
            union = a_key | b_key
            if len(union) != level + 1 or union in seen:
                continue
            seen.add(union)
            attrs = [item_attrs[i] for i in union]
            if len(set(attrs)) != len(attrs):
                continue
            # "Materialise only if all parents are kept": every level-k
            # subset must have been kept.
            if any(
                frozenset(sub) not in kept_sets
                for sub in combinations(sorted(union), level)
            ):
                continue
            pattern = Pattern(
                [pred for i in sorted(union) for pred in items[i].predicates]
            )
            candidates.append((union, pattern))
        current_keys, truncated = materialise_level(candidates, level + 1)
        if truncated:
            return nodes
        level += 1
    return nodes
