"""Top-down lattice traversal with parent-based pruning (Sec. 5.2).

Step 2 of FairCap searches the lattice of intervention patterns: nodes are
conjunctions of single-attribute items, and an edge connects ``P1`` to ``P2``
when ``P2`` adds one predicate to ``P1``.  The paper materialises a node only
when *all of its parents* passed the filter (there: positive CATE), arguing
that combining positive-effect treatments is likely to stay positive.

This module implements the traversal generically: callers provide the items
and an ``evaluate`` callback that decides, per pattern, whether the node is
*kept* (expandable) and attaches an arbitrary payload (e.g. a
:class:`~repro.causal.estimators.CateResult`).  The FairCap-specific scoring
lives in :mod:`repro.core.intervention`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Sequence

from repro.mining.patterns import Pattern
from repro.utils.errors import PatternError

Evaluation = tuple[bool, object]
"""(keep, payload): keep=True lets the node's supersets be explored."""


@dataclass(frozen=True)
class LatticeNode:
    """A materialised lattice node.

    Attributes
    ----------
    pattern:
        The intervention pattern at this node.
    level:
        Number of items combined (1 = single predicate).
    keep:
        Whether the evaluation kept the node (e.g. positive CATE).
    payload:
        Whatever ``evaluate`` attached (estimates, utilities, ...).
    """

    pattern: Pattern
    level: int
    keep: bool
    payload: object


def traverse_lattice(
    items: Sequence[Pattern],
    evaluate: Callable[[Pattern], Evaluation],
    max_level: int = 2,
    max_nodes: int | None = None,
) -> list[LatticeNode]:
    """Materialise the lattice top-down with all-parents-kept pruning.

    Parameters
    ----------
    items:
        Single-attribute item patterns (the lattice's level-1 atoms).
    evaluate:
        Callback returning ``(keep, payload)`` for a candidate pattern.
        ``keep=False`` prunes the node's entire up-set from exploration
        (it is still reported in the result with ``keep=False``).
    max_level:
        Deepest level to explore (the paper uses small treatments;
        level 2 is the default as in CauSumX).
    max_nodes:
        Optional hard cap on materialised nodes (safety valve for
        benchmarks); ``None`` = unlimited.

    Returns
    -------
    list[LatticeNode]
        Every node that was materialised (kept or not), level by level.
    """
    for item in items:
        if len(item.attributes) != 1:
            raise PatternError(
                f"lattice items must cover exactly one attribute, got {item}"
            )

    nodes: list[LatticeNode] = []
    kept_sets: dict[frozenset[int], Pattern] = {}
    item_attrs = [item.attributes[0] for item in items]

    def materialise(key: frozenset[int], pattern: Pattern, level: int) -> bool:
        keep, payload = evaluate(pattern)
        nodes.append(LatticeNode(pattern, level, keep, payload))
        if keep:
            kept_sets[key] = pattern
        return keep

    for idx, item in enumerate(items):
        if max_nodes is not None and len(nodes) >= max_nodes:
            return nodes
        materialise(frozenset((idx,)), item, 1)

    level = 1
    current_keys = [k for k in kept_sets if len(k) == 1]
    while current_keys and level < max_level:
        next_keys: list[frozenset[int]] = []
        seen: set[frozenset[int]] = set()
        ordered = sorted(current_keys, key=lambda s: tuple(sorted(s)))
        for a_key, b_key in combinations(ordered, 2):
            union = a_key | b_key
            if len(union) != level + 1 or union in seen:
                continue
            seen.add(union)
            attrs = [item_attrs[i] for i in union]
            if len(set(attrs)) != len(attrs):
                continue
            # "Materialise only if all parents are kept": every level-k
            # subset must have been kept.
            if any(
                frozenset(sub) not in kept_sets
                for sub in combinations(sorted(union), level)
            ):
                continue
            if max_nodes is not None and len(nodes) >= max_nodes:
                return nodes
            pattern = Pattern(
                [pred for i in sorted(union) for pred in items[i].predicates]
            )
            if materialise(union, pattern, level + 1):
                next_keys.append(union)
        current_keys = next_keys
        level += 1
    return nodes
