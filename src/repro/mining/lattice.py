"""Top-down lattice traversal with parent-based pruning (Sec. 5.2).

Step 2 of FairCap searches the lattice of intervention patterns: nodes are
conjunctions of single-attribute items, and an edge connects ``P1`` to ``P2``
when ``P2`` adds one predicate to ``P1``.  The paper materialises a node only
when *all of its parents* passed the filter (there: positive CATE), arguing
that combining positive-effect treatments is likely to stay positive.

This module implements the traversal generically, in two spellings that are
guaranteed to explore the same lattice:

- :func:`traverse_lattice` drives one lattice to completion: callers provide
  the items and an ``evaluate`` callback that decides, per pattern, whether
  the node is *kept* (expandable) and attaches an arbitrary payload (e.g. a
  :class:`~repro.causal.estimators.CateResult`) — or an ``evaluate_many``
  callback that consumes a whole level at once (the batched FWL engine's
  entry point).
- :class:`LatticeWalk` exposes the same traversal level-synchronously:
  ``candidates()`` hands out one level's candidate patterns, ``advance()``
  takes their evaluations and generates the next level.  This is what lets
  the frontier batcher (:func:`repro.core.intervention.mine_interventions_frontier`)
  run *many* lattices in lock-step — level k+1 of every grouping-pattern
  context is collected into one estimation round — while candidate
  generation, ordering and pruning stay byte-for-byte those of the serial
  traversal (``traverse_lattice`` is itself implemented on ``LatticeWalk``).

The FairCap-specific scoring lives in :mod:`repro.core.intervention`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Sequence

from repro.mining.patterns import Pattern
from repro.utils.errors import PatternError

Evaluation = tuple[bool, object]
"""(keep, payload): keep=True lets the node's supersets be explored."""


@dataclass(frozen=True)
class LatticeNode:
    """A materialised lattice node.

    Attributes
    ----------
    pattern:
        The intervention pattern at this node.
    level:
        Number of items combined (1 = single predicate).
    keep:
        Whether the evaluation kept the node (e.g. positive CATE).
    payload:
        Whatever ``evaluate`` attached (estimates, utilities, ...).
    """

    pattern: Pattern
    level: int
    keep: bool
    payload: object


class LatticeWalk:
    """One lattice traversal, advanced one level at a time.

    The walk owns the traversal state — materialised nodes, kept ancestor
    sets, the pending candidate level — and exposes exactly two moves:
    :meth:`candidates` returns the current level's candidate patterns (in
    canonical generation order, already truncated to any ``max_nodes``
    budget), and :meth:`advance` consumes their evaluations, records the
    nodes, and generates the next level under all-parents-kept pruning.
    Interleaving many walks (the frontier batcher) or running one to
    completion (:func:`traverse_lattice`) produces identical nodes.

    Parameters
    ----------
    items:
        Single-attribute item patterns (the lattice's level-1 atoms).
    max_level:
        Deepest level to explore (the paper uses small treatments;
        level 2 is the default as in CauSumX).
    max_nodes:
        Optional hard cap on materialised nodes (safety valve for
        benchmarks); ``None`` = unlimited.  Hitting the cap truncates the
        current level's candidate list and ends the walk after it.
    """

    def __init__(
        self,
        items: Sequence[Pattern],
        max_level: int = 2,
        max_nodes: int | None = None,
    ) -> None:
        for item in items:
            if len(item.attributes) != 1:
                raise PatternError(
                    f"lattice items must cover exactly one attribute, got {item}"
                )
        self._items = list(items)
        self._item_attrs = [item.attributes[0] for item in self._items]
        self._max_level = max_level
        self._max_nodes = max_nodes
        self.nodes: list[LatticeNode] = []
        self._kept_sets: dict[frozenset[int], Pattern] = {}
        self._level = 1
        self._truncated = False
        self._pending: list[tuple[frozenset[int], Pattern]] | None = [
            (frozenset((idx,)), item) for idx, item in enumerate(self._items)
        ]
        self._apply_node_budget()

    @property
    def level(self) -> int:
        """Level of the pending candidates (1 = the items themselves)."""
        return self._level

    @property
    def done(self) -> bool:
        """True once no further candidates will be produced."""
        return self._pending is None

    def _apply_node_budget(self) -> None:
        if self._max_nodes is None or self._pending is None:
            return
        remaining = self._max_nodes - len(self.nodes)
        if len(self._pending) > remaining:
            self._pending = self._pending[:remaining]
            self._truncated = True

    def candidates(self) -> list[Pattern]:
        """The current level's candidate patterns, in generation order."""
        if self._pending is None:
            raise PatternError("lattice walk is finished")
        return [pattern for _, pattern in self._pending]

    def advance(self, evaluations: Sequence[Evaluation]) -> None:
        """Record one level's evaluations and generate the next level.

        ``evaluations[i]`` must correspond to ``candidates()[i]``; a
        mismatched length is an error (it would silently desynchronise the
        pruning state).
        """
        if self._pending is None:
            raise PatternError("lattice walk is finished")
        if len(evaluations) != len(self._pending):
            raise PatternError(
                f"{len(evaluations)} evaluations for "
                f"{len(self._pending)} candidates"
            )
        kept_keys: list[frozenset[int]] = []
        for (key, pattern), (keep, payload) in zip(self._pending, evaluations):
            self.nodes.append(LatticeNode(pattern, self._level, keep, payload))
            if keep:
                self._kept_sets[key] = pattern
                kept_keys.append(key)
        if self._truncated or not kept_keys or self._level >= self._max_level:
            self._pending = None
            return
        self._pending = self._generate(kept_keys)
        self._level += 1
        self._apply_node_budget()

    def _generate(
        self, kept_keys: list[frozenset[int]]
    ) -> list[tuple[frozenset[int], Pattern]]:
        """Next level's candidates from the keys kept at the current level."""
        level = self._level
        candidates: list[tuple[frozenset[int], Pattern]] = []
        seen: set[frozenset[int]] = set()
        ordered = sorted(kept_keys, key=lambda s: tuple(sorted(s)))
        for a_key, b_key in combinations(ordered, 2):
            union = a_key | b_key
            if len(union) != level + 1 or union in seen:
                continue
            seen.add(union)
            attrs = [self._item_attrs[i] for i in union]
            if len(set(attrs)) != len(attrs):
                continue
            # "Materialise only if all parents are kept": every level-k
            # subset must have been kept.
            if any(
                frozenset(sub) not in self._kept_sets
                for sub in combinations(sorted(union), level)
            ):
                continue
            pattern = Pattern(
                [pred for i in sorted(union) for pred in self._items[i].predicates]
            )
            candidates.append((union, pattern))
        return candidates


def traverse_lattice(
    items: Sequence[Pattern],
    evaluate: Callable[[Pattern], Evaluation] | None = None,
    max_level: int = 2,
    max_nodes: int | None = None,
    executor=None,
    evaluate_many: Callable[[list[Pattern]], list[Evaluation]] | None = None,
) -> list[LatticeNode]:
    """Materialise the lattice top-down with all-parents-kept pruning.

    Parameters
    ----------
    items:
        Single-attribute item patterns (the lattice's level-1 atoms).
    evaluate:
        Callback returning ``(keep, payload)`` for a candidate pattern.
        ``keep=False`` prunes the node's entire up-set from exploration
        (it is still reported in the result with ``keep=False``).
        May be omitted when ``evaluate_many`` is given.
    max_level:
        Deepest level to explore (the paper uses small treatments;
        level 2 is the default as in CauSumX).
    max_nodes:
        Optional hard cap on materialised nodes (safety valve for
        benchmarks); ``None`` = unlimited.
    executor:
        Optional *in-process* :class:`~repro.parallel.executors.Executor`
        (serial or thread) used to evaluate each level's candidate batch
        concurrently.  A level's candidates are fully determined by the
        previous levels' keeps, and within-level evaluations are mutually
        independent, so batching preserves the serial traversal exactly:
        nodes are appended in candidate-generation order regardless of
        completion order.  Process executors are ignored (silent serial
        fallback): ``evaluate`` is typically a closure, which cannot cross
        a process boundary — process-level parallelism belongs at the
        grouping-pattern fan-out (:mod:`repro.parallel.mining`).  Ignored
        when ``evaluate_many`` is given.
    evaluate_many:
        Batch variant of ``evaluate``: receives one whole level's candidate
        patterns and returns their evaluations in order.  Takes precedence
        over ``evaluate``/``executor`` — this is how the batched FWL
        estimation engine (:mod:`repro.causal.batch`) consumes a level in
        one GEMM instead of one OLS per candidate.  The traversal is
        unchanged: candidate generation, ordering, and pruning are
        identical to the per-pattern path.

    Returns
    -------
    list[LatticeNode]
        Every node that was materialised (kept or not), level by level.
    """
    if evaluate is None and evaluate_many is None:
        raise PatternError("traverse_lattice needs evaluate or evaluate_many")

    if executor is not None and getattr(executor, "kind", "serial") == "process":
        executor = None  # closures cannot cross a process boundary

    def evaluate_batch(patterns: list[Pattern]) -> list[Evaluation]:
        if evaluate_many is not None:
            return evaluate_many(patterns)
        if executor is None or len(patterns) <= 1:
            return [evaluate(p) for p in patterns]
        return executor.map(evaluate, patterns)

    walk = LatticeWalk(items, max_level=max_level, max_nodes=max_nodes)
    while not walk.done:
        walk.advance(evaluate_batch(walk.candidates()))
    return walk.nodes
