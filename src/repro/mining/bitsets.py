"""Packed bitset masks: the Step-2 item-mask kernel.

Step 2 of FairCap composes thousands of candidate treated masks per run, and
every one of them is a conjunction of a handful of *atomic predicates* —
exactly the structure frequent-pattern miners exploit with per-item bitsets
(cf. the candidate-lattice reuse in reliable-causal-rule discovery).  This
module packs boolean row masks into ``uint64`` words so that

- each atomic predicate is evaluated against a table **once** and cached on
  the (immutable) table instance, like its fingerprint and design blocks;
- a level-k candidate's mask is the bitwise AND of its items' words — 64
  rows per instruction instead of re-evaluating every predicate per
  candidate;
- support counts come from a popcount over the words, which is what lets
  the mining layer prune candidates below minimum support *before* any
  estimation work (see
  :meth:`repro.rules.utility.GroupEvaluationContext.begin_level`).

Exactness contract
------------------
Packing is a pure re-encoding: ``unpack_mask(pack_mask(m), len(m))`` is
bit-identical to ``m``, AND in the packed domain equals AND in the boolean
domain, and ``popcount`` equals ``mask.sum()`` exactly (differentially
tested in ``tests/mining/test_bitsets.py``).  The padding bits of the last
word are always zero — ``np.packbits`` pads with zeros and AND can never
set a bit — so popcounts need no trailing-word masking.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pack_mask",
    "unpack_mask",
    "unpack_rows",
    "popcount",
    "popcount_rows",
    "predicate_bitset",
    "pattern_bitset",
    "PackedMaskBuilder",
    "concat_packed",
]

if hasattr(np, "bitwise_count"):  # numpy >= 2.0
    _popcount_words = np.bitwise_count
else:  # pragma: no cover - exercised only on numpy 1.x
    _POPCOUNT_U8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

    def _popcount_words(words: np.ndarray) -> np.ndarray:
        return _POPCOUNT_U8[words.view(np.uint8)].reshape(*words.shape, 8).sum(
            axis=-1, dtype=np.uint64
        )


def pack_mask(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean row mask into a ``(ceil(n/64),)`` ``uint64`` array.

    The bit order is ``np.packbits``'s big-endian-per-byte convention; all
    padding bits beyond row ``n`` are zero.  Callers never need to know the
    bit order — every consumer goes through :func:`unpack_mask`,
    :func:`popcount`, or bitwise operators, all of which are
    order-consistent by construction.
    """
    packed = np.packbits(np.asarray(mask, dtype=bool))
    pad = (-packed.size) % 8
    if pad:
        packed = np.concatenate([packed, np.zeros(pad, dtype=np.uint8)])
    return packed.view(np.uint64)


def unpack_mask(words: np.ndarray, n_rows: int) -> np.ndarray:
    """Invert :func:`pack_mask`: words back to an ``(n_rows,)`` boolean mask."""
    return np.unpackbits(words.view(np.uint8), count=n_rows).view(np.bool_)


def unpack_rows(word_matrix: np.ndarray, n_rows: int) -> np.ndarray:
    """Unpack an ``(m, words)`` stack into an ``(m, n_rows)`` boolean matrix.

    Row ``j`` of the result is ``unpack_mask(word_matrix[j], n_rows)`` —
    the row-major ("transposed") treated-mask layout the fused level kernel
    (:func:`repro.causal.batch.estimate_level_rows`) consumes directly.
    """
    m = word_matrix.shape[0]
    if m == 0:
        return np.empty((0, n_rows), dtype=bool)
    flat = np.unpackbits(
        np.ascontiguousarray(word_matrix).view(np.uint8), axis=1, count=n_rows
    )
    return flat.view(np.bool_)


def popcount(words: np.ndarray) -> int:
    """Number of set bits — ``unpack_mask(words, n).sum()`` without unpacking."""
    return int(_popcount_words(words).sum())


def popcount_rows(word_matrix: np.ndarray) -> np.ndarray:
    """Per-row popcounts of an ``(m, words)`` stack as an ``int64`` array."""
    if word_matrix.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    return _popcount_words(word_matrix).sum(axis=1, dtype=np.int64)


class PackedMaskBuilder:
    """Incremental :func:`pack_mask` over row segments of arbitrary length.

    The sharded data layer evaluates predicates one shard at a time and
    needs the *whole-table* packed words back — bit-identical to
    ``pack_mask`` of the concatenated boolean mask.  Appending a segment
    ORs its packed bytes into the output at the current bit offset; when a
    shard boundary is not byte-aligned the segment's byte stream is split
    across two byte lanes (``seg >> r`` into the current byte, the spilled
    low bits ``(seg << (8-r)) & 0xFF`` into the next), which is exact: bits
    are moved, never recomputed.  64-aligned shard boundaries reduce to a
    plain byte copy.

    Exactness contract: for any partition of ``mask`` into segments,
    ``builder.words() == pack_mask(mask)`` bit-for-bit (property-tested in
    ``tests/datasets/test_sharding.py`` with rng-fuzzed boundaries,
    including 1-row segments).
    """

    def __init__(self, n_rows: int) -> None:
        self.n_rows = int(n_rows)
        n_words = (self.n_rows + 63) // 64
        self._bytes = np.zeros(max(n_words, 0) * 8, dtype=np.uint8)
        self._bit = 0

    def append(self, mask: np.ndarray) -> None:
        """Append one boolean row segment at the current bit offset."""
        mask = np.asarray(mask, dtype=bool)
        if self._bit + mask.size > self.n_rows:
            raise ValueError(
                f"segments exceed declared n_rows={self.n_rows} "
                f"(at bit {self._bit}, appending {mask.size})"
            )
        if mask.size == 0:
            return
        seg = np.packbits(mask)
        byte, rem = divmod(self._bit, 8)
        if rem == 0:
            self._bytes[byte : byte + seg.size] |= seg
        else:
            self._bytes[byte : byte + seg.size] |= seg >> rem
            # Low bits of each segment byte spill into the next output
            # byte.  Spill beyond the buffer can only carry packbits
            # padding zeros (every real row bit lands inside the buffer),
            # so clamping to the remaining lane is lossless.
            lane = self._bytes[byte + 1 : byte + 1 + seg.size]
            lane |= np.left_shift(seg, 8 - rem)[: lane.size]
        self._bit += mask.size

    def words(self) -> np.ndarray:
        """The packed ``uint64`` words; every declared row must be appended."""
        if self._bit != self.n_rows:
            raise ValueError(
                f"only {self._bit} of {self.n_rows} rows appended"
            )
        return self._bytes.view(np.uint64)


def concat_packed(segments, n_rows: int) -> np.ndarray:
    """Concatenate per-segment packed words into whole-range packed words.

    ``segments`` is a sequence of ``(words, segment_rows)`` pairs in row
    order.  When every boundary except the last is 64-aligned this is a
    plain word concatenation; otherwise each segment is unpacked and
    re-packed through :class:`PackedMaskBuilder` (bit moves only — exact
    either way, and exactly ``pack_mask`` of the concatenated mask).
    """
    segments = list(segments)
    total = sum(rows for _, rows in segments)
    if total != n_rows:
        raise ValueError(f"segments cover {total} rows, expected {n_rows}")
    if all(rows % 64 == 0 for _, rows in segments[:-1]):
        if not segments:
            return np.zeros(0, dtype=np.uint64)
        return np.concatenate(
            [np.asarray(words, dtype=np.uint64) for words, _ in segments]
        )
    builder = PackedMaskBuilder(n_rows)
    for words, rows in segments:
        builder.append(unpack_mask(np.asarray(words, dtype=np.uint64), rows))
    return builder.words()


def predicate_bitset(table, predicate) -> np.ndarray:
    """Packed mask of one atomic predicate over ``table``, memoised per table.

    The predicate is evaluated (vectorised) exactly once per table instance;
    every candidate pattern containing it afterwards pays one AND over
    ``n/64`` words.  The cache rides on the immutable table's ``__dict__``
    exactly like :meth:`repro.tabular.table.Table.fingerprint` and the
    per-attribute design blocks of :mod:`repro.causal.batch` do.
    """
    cache = table.__dict__.setdefault("_predicate_bitset_cache", {})
    words = cache.get(predicate)
    if words is None:
        words = pack_mask(predicate.mask(table))
        cache[predicate] = words
    return words


def pattern_bitset(table, pattern) -> np.ndarray:
    """Packed coverage mask of a conjunctive pattern: AND of its items' words.

    Bit-identical to ``pack_mask(pattern.mask(table))`` (the per-candidate
    re-evaluation it replaces); the empty pattern covers every row, matching
    :meth:`repro.mining.patterns.Pattern.mask`.
    """
    predicates = pattern.predicates
    if not predicates:
        return pack_mask(np.ones(table.n_rows, dtype=bool))
    words = predicate_bitset(table, predicates[0])
    for predicate in predicates[1:]:
        words = words & predicate_bitset(table, predicate)
    return words
