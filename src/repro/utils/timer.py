"""Wall-clock timing helpers used by the runtime experiments (Figs. 3-5).

:class:`Timer` is a context manager for a single measurement.  A
:class:`StepTimer` accumulates named phases so the FairCap driver can report
the per-step breakdown shown in the paper's Figure 3 (group mining /
treatment mining / greedy selection).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


class StepTimer:
    """Accumulates elapsed time per named step.

    The same step name may be entered multiple times; durations add up.
    Re-entrancy is safe: when a step is entered *while already running*
    (a helper timing ``"x"`` inside an outer ``"x"`` block), only the
    outermost entry accumulates, so nested same-name blocks cannot double
    count the same wall-clock span.  Each outermost entry also opens a
    ``step.<name>`` span on the ambient telemetry tracer
    (:mod:`repro.obs.runtime`) — a no-op unless a telemetry session is
    active.
    """

    def __init__(self) -> None:
        self.steps: dict[str, float] = {}
        self._depth: dict[str, int] = {}

    @contextmanager
    def step(self, name: str) -> Iterator[None]:
        """Time the enclosed block and add it to step ``name``."""
        from repro.obs.runtime import current as obs_current

        depth = self._depth.get(name, 0)
        self._depth[name] = depth + 1
        start = time.perf_counter()
        try:
            if depth == 0:
                with obs_current().tracer.span(f"step.{name}"):
                    yield
            else:
                yield
        finally:
            self._depth[name] = depth
            if depth == 0:
                self.steps[name] = self.steps.get(name, 0.0) + (
                    time.perf_counter() - start
                )

    @property
    def total(self) -> float:
        """Sum of all recorded step durations."""
        return sum(self.steps.values())

    def as_dict(self) -> dict[str, float]:
        """Return a copy of the per-step durations."""
        return dict(self.steps)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:.3f}s" for k, v in self.steps.items())
        return f"StepTimer({inner})"
