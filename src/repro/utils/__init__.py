"""Shared utilities: errors, RNG handling, timers and text formatting."""

from repro.utils.errors import (
    ReproError,
    SchemaError,
    PatternError,
    EstimationError,
    ConfigError,
)
from repro.utils.rng import ensure_rng
from repro.utils.timer import Timer, StepTimer
from repro.utils.text import format_table, format_float, format_percent

__all__ = [
    "ReproError",
    "SchemaError",
    "PatternError",
    "EstimationError",
    "ConfigError",
    "ensure_rng",
    "Timer",
    "StepTimer",
    "format_table",
    "format_float",
    "format_percent",
]
