"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch a single base class.  Subclasses separate the main failure domains:
schema validation, pattern construction, causal-effect estimation, and
algorithm configuration.
"""


class ReproError(Exception):
    """Base class for every exception raised by the repro package."""


class SchemaError(ReproError):
    """Raised when a table, column, or schema is malformed or inconsistent.

    Examples: duplicate attribute names, a column whose length differs from
    the table's row count, or referencing an attribute that does not exist.
    """


class PatternError(ReproError):
    """Raised when a predicate or pattern is invalid.

    Examples: an unknown comparison operator, an ordering comparison against
    a categorical attribute, or conjoining two predicates on the same
    attribute with contradictory equality values.
    """


class EstimationError(ReproError):
    """Raised when a causal effect cannot be estimated.

    Examples: an empty treated or control group (positivity violation), a
    singular design matrix, or a treatment attribute missing from the DAG.
    """


class ConfigError(ReproError):
    """Raised when an algorithm configuration is invalid.

    Examples: negative thresholds, unknown problem-variant names, or fairness
    constraints that reference an undefined protected group.
    """


class ServeError(ReproError):
    """Raised by the serving subsystem for bad artifacts or requests.

    Examples: a ruleset artifact with an unknown format or future version,
    a prescription request missing attributes the ruleset's grouping
    patterns require, or a malformed request body.
    """
