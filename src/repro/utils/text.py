"""Plain-text table rendering for the experiment harness.

The evaluation harness prints the paper's tables as aligned ASCII.  This
module holds the small formatting helpers shared by all experiment scripts
so numbers render consistently (percentages as in Table 4, dollar-scale
utilities without decimals, unit-scale utilities with two decimals).
"""

from __future__ import annotations

from typing import Sequence


def format_float(value: float, decimals: int = 2) -> str:
    """Format ``value`` with ``decimals`` digits, dropping the sign of -0.0."""
    if value == 0:
        value = 0.0
    return f"{value:.{decimals}f}"


def format_percent(fraction: float, decimals: int = 2) -> str:
    """Render a 0-1 fraction as a percentage string like Table 4.

    >>> format_percent(0.9991)
    '99.91%'
    """
    return f"{fraction * 100:.{decimals}f}%"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Each cell is stringified with ``str``; column widths adapt to content.
    The result is suitable for printing in benchmark output.
    """
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)
