"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts ``rng`` as either an
integer seed, a :class:`numpy.random.Generator`, or ``None``; this module
normalises those three spellings so that internal code can always assume a
``Generator``.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 20250227
"""Default seed (the paper's arXiv submission date) for reproducible runs."""


def ensure_rng(rng: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` (use :data:`DEFAULT_SEED`), an ``int`` seed, or an existing
        generator (returned unchanged so callers can share stream state).

    Examples
    --------
    >>> gen = ensure_rng(7)
    >>> ensure_rng(gen) is gen
    True
    """
    if rng is None:
        return np.random.default_rng(DEFAULT_SEED)
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, int, or numpy Generator; got {type(rng)!r}")
