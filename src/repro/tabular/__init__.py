"""Columnar single-relation table substrate (S1).

The paper's implementation sits on pandas; this subpackage provides the small
columnar-table layer that FairCap actually needs, backed by numpy:

- :class:`~repro.tabular.column.CategoricalColumn` — integer-coded categorical
  columns with vectorised comparisons,
- :class:`~repro.tabular.column.NumericColumn` — float columns,
- :class:`~repro.tabular.schema.Schema` — attribute kinds (categorical /
  continuous) and prescription roles (immutable / mutable / outcome),
- :class:`~repro.tabular.table.Table` — an immutable bag of equal-length
  columns with filtering, selection and sampling,
- :mod:`~repro.tabular.io` — CSV round-tripping.
"""

from repro.tabular.column import CategoricalColumn, Column, NumericColumn, column_from_values
from repro.tabular.schema import AttributeKind, AttributeRole, AttributeSpec, Schema
from repro.tabular.table import Table
from repro.tabular.io import read_csv, write_csv

__all__ = [
    "CategoricalColumn",
    "NumericColumn",
    "Column",
    "column_from_values",
    "AttributeKind",
    "AttributeRole",
    "AttributeSpec",
    "Schema",
    "Table",
    "read_csv",
    "write_csv",
]
