"""The :class:`Table` — an immutable columnar relation instance.

A table is a dictionary of equal-length columns, optionally annotated with a
:class:`~repro.tabular.schema.Schema`.  It supports exactly the operations
FairCap's pipeline needs: vectorised row filtering, column selection, random
sampling (for the Figure 4 scalability sweep), and row/column conversion.

Tables are cheap to filter: a filtered table shares the category dictionaries
of its parent and copies only the selected codes/values.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.tabular.column import (
    CategoricalColumn,
    Column,
    NumericColumn,
    column_from_values,
)
from repro.tabular.schema import AttributeKind, AttributeRole, AttributeSpec, Schema
from repro.utils.errors import SchemaError
from repro.utils.rng import ensure_rng


def _canonical_category(value: object) -> str:
    """Stable text encoding of one category value for fingerprinting.

    Numpy scalars (``np.str_``, ``np.int64``, ...) unwrap to their plain
    Python equivalents first: ``repr`` of a numpy scalar embeds the numpy
    type name (``np.str_('US')`` vs ``'US'``), which would give two tables
    with value-identical category dictionaries different fingerprints
    depending on whether their source arrays were numpy- or list-backed.
    """
    if isinstance(value, np.generic):
        value = value.item()
    return repr(value)


class _MaskCache(OrderedDict):
    """LRU-bounded mapping used by :meth:`Table.mask_cache`."""

    def __init__(self, max_entries: int) -> None:
        super().__init__()
        self.max_entries = max(1, int(max_entries))

    def get(self, key: object, default: object = None) -> object:
        value = super().get(key, default)
        if key in self:
            self.move_to_end(key)
        return value

    def __setitem__(self, key: object, value: object) -> None:
        super().__setitem__(key, value)
        self.move_to_end(key)
        while len(self) > self.max_entries:
            self.popitem(last=False)


class Table:
    """An immutable set of equal-length named columns.

    Parameters
    ----------
    columns:
        Mapping of attribute name to column (or raw values, which are
        auto-typed by :func:`~repro.tabular.column.column_from_values`).
    schema:
        Optional schema.  If omitted, a schema is inferred: every column is
        ``auxiliary`` with kind derived from its column type.

    Notes
    -----
    Column order is the insertion order of ``columns`` (or the schema order
    when a schema is supplied).
    """

    def __init__(
        self,
        columns: Mapping[str, object],
        schema: Schema | None = None,
    ) -> None:
        typed: dict[str, Column] = {
            name: column_from_values(values) for name, values in columns.items()
        }
        lengths = {name: len(col) for name, col in typed.items()}
        if len(set(lengths.values())) > 1:
            raise SchemaError(f"columns have differing lengths: {lengths}")
        self._columns = typed
        self._n_rows = next(iter(lengths.values())) if lengths else 0
        if schema is None:
            schema = Schema(
                AttributeSpec(
                    name,
                    AttributeKind.CATEGORICAL
                    if isinstance(col, CategoricalColumn)
                    else AttributeKind.CONTINUOUS,
                    AttributeRole.AUXILIARY,
                )
                for name, col in typed.items()
            )
        else:
            self._check_schema_consistency(typed, schema)
        self.schema = schema

    @staticmethod
    def _check_schema_consistency(
        columns: Mapping[str, Column], schema: Schema
    ) -> None:
        schema_names = set(schema.names)
        column_names = set(columns)
        if schema_names != column_names:
            raise SchemaError(
                "schema attributes and table columns differ: "
                f"schema-only={sorted(schema_names - column_names)}, "
                f"table-only={sorted(column_names - schema_names)}"
            )
        for spec in schema:
            col = columns[spec.name]
            col_kind = (
                AttributeKind.CATEGORICAL
                if isinstance(col, CategoricalColumn)
                else AttributeKind.CONTINUOUS
            )
            if col_kind is not spec.kind:
                raise SchemaError(
                    f"attribute {spec.name!r}: schema says {spec.kind.value}, "
                    f"column is {col_kind.value}"
                )

    # -- construction --------------------------------------------------------

    @classmethod
    def from_rows(
        cls, rows: Sequence[Mapping[str, object]], schema: Schema | None = None
    ) -> "Table":
        """Build a table from a sequence of row dictionaries.

        All rows must share the same key set.
        """
        if not rows:
            raise SchemaError("cannot build a table from zero rows without a schema")
        names = list(rows[0].keys())
        for i, row in enumerate(rows):
            if set(row.keys()) != set(names):
                raise SchemaError(f"row {i} keys differ from row 0 keys")
        columns = {name: [row[name] for row in rows] for name in names}
        return cls(columns, schema=schema)

    # -- basic properties ------------------------------------------------------

    @property
    def n_rows(self) -> int:
        """Number of rows (``|D|`` in the paper)."""
        return self._n_rows

    def __len__(self) -> int:
        return self._n_rows

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in schema order."""
        return self.schema.names

    def column(self, name: str) -> Column:
        """Return the column object for ``name``."""
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(f"unknown column {name!r}") from None

    def values(self, name: str) -> np.ndarray:
        """Return decoded values of column ``name`` (object or float array)."""
        return self.column(name).decode()

    def fingerprint(self) -> str:
        """Content hash of the table: column names, types, and data.

        Two tables with identical columns (same names in the same order,
        same category dictionaries, same row values in the same row order)
        share a fingerprint even when they were materialised through
        different filter paths.  :class:`~repro.parallel.cache.EstimationCache`
        keys CATE memo entries by this, which is what lets estimation work
        be shared across problem variants and repeated experiment runs.
        Memoised per instance (tables are immutable).

        Stability contract (regression-tested): fingerprints do not depend
        on the *source dtype* of the values — numeric columns normalise to
        ``float64`` on construction, and category values are hashed through
        their plain-Python form (:func:`_canonical_category`), so an
        ``int32`` versus ``int64`` upcast or a numpy- versus list-backed
        string column cannot split the cache.
        """
        fp = self.__dict__.get("_fingerprint")
        if fp is None:
            h = hashlib.blake2b(digest_size=20)
            h.update(str(self._n_rows).encode())
            for name in self.column_names:
                column = self._columns[name]
                h.update(name.encode())
                if isinstance(column, CategoricalColumn):
                    h.update(b"cat")
                    for category in column.categories:
                        h.update(_canonical_category(category).encode())
                        h.update(b"\x1f")
                    h.update(np.ascontiguousarray(column.codes).tobytes())
                else:
                    h.update(b"num")
                    h.update(np.ascontiguousarray(column.decode()).tobytes())
            fp = h.hexdigest()
            self.__dict__["_fingerprint"] = fp
        return fp

    def mask_cache(self, max_entries: int = 1024) -> "_MaskCache":
        """Per-table memo of hashable key -> boolean coverage mask.

        :class:`~repro.rules.ruleset.RulesetEvaluator` keys this by grouping
        pattern so repeated evaluations over the same table reuse masks for
        unchanged rules.  The cache is LRU-bounded (``max_entries``) so
        long-lived tables driven through many candidate pools (e.g. the
        apriori sweep) do not pin every mask ever computed; ``max_entries``
        applies when the cache is first created.  Cached arrays are
        read-only; derived tables (``filter``/``take``/``select``) start
        with a fresh cache because they are new objects.
        """
        cache = self.__dict__.get("_mask_cache")
        if cache is None:
            cache = _MaskCache(max_entries)
            self.__dict__["_mask_cache"] = cache
        return cache

    # -- row selection ---------------------------------------------------------

    def filter(self, mask: np.ndarray) -> "Table":
        """Return the sub-table of rows where boolean ``mask`` is True."""
        mask = np.asarray(mask)
        if mask.dtype != bool or mask.shape != (self._n_rows,):
            raise SchemaError(
                f"mask must be a boolean array of length {self._n_rows}"
            )
        return Table(
            {name: col.take(mask) for name, col in self._columns.items()},
            schema=self.schema,
        )

    def take(self, indices: np.ndarray) -> "Table":
        """Return the sub-table of rows at integer ``indices`` (with order)."""
        indices = np.asarray(indices, dtype=np.int64)
        return Table(
            {name: col.take(indices) for name, col in self._columns.items()},
            schema=self.schema,
        )

    def head(self, n: int = 5) -> "Table":
        """Return the first ``n`` rows."""
        return self.take(np.arange(min(n, self._n_rows)))

    def sample_fraction(
        self, fraction: float, rng: int | np.random.Generator | None = None
    ) -> "Table":
        """Uniform random sample of ``fraction`` of the rows, without replacement.

        Used by the Figure 4 scalability sweep (25% / 50% / 75% / 100%).
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if fraction == 1.0:
            return self
        generator = ensure_rng(rng)
        n_keep = max(1, int(round(self._n_rows * fraction)))
        indices = generator.choice(self._n_rows, size=n_keep, replace=False)
        return self.take(np.sort(indices))

    # -- column manipulation -----------------------------------------------------

    def select(self, names: Iterable[str]) -> "Table":
        """Return the table restricted to ``names`` (with restricted schema)."""
        names = list(names)
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise SchemaError(f"unknown columns: {missing}")
        return Table(
            {name: self._columns[name] for name in names},
            schema=self.schema.restrict(names),
        )

    def drop(self, names: Iterable[str]) -> "Table":
        """Return the table without the given columns."""
        dropped = set(names)
        keep = [n for n in self.column_names if n not in dropped]
        return self.select(keep)

    def with_column(
        self, name: str, values: object, spec: AttributeSpec | None = None
    ) -> "Table":
        """Return a copy with column ``name`` added or replaced."""
        column = column_from_values(values)  # type: ignore[arg-type]
        if len(column) != self._n_rows and self._n_rows > 0:
            raise SchemaError(
                f"new column length {len(column)} != table rows {self._n_rows}"
            )
        if spec is None:
            kind = (
                AttributeKind.CATEGORICAL
                if isinstance(column, CategoricalColumn)
                else AttributeKind.CONTINUOUS
            )
            existing = self.schema.spec(name) if name in self.schema else None
            role = existing.role if existing else AttributeRole.AUXILIARY
            spec = AttributeSpec(name, kind, role)
        new_columns = dict(self._columns)
        new_columns[name] = column
        new_specs = [s for s in self.schema if s.name != name] + [spec]
        return Table(new_columns, schema=Schema(new_specs))

    def with_schema(self, schema: Schema) -> "Table":
        """Return the same data under a different (consistent) schema."""
        return Table(dict(self._columns), schema=schema)

    # -- conversion / inspection ---------------------------------------------------

    def to_rows(self) -> list[dict[str, object]]:
        """Materialise the table as a list of row dictionaries."""
        decoded = {name: self.values(name) for name in self.column_names}
        return [
            {name: decoded[name][i] for name in self.column_names}
            for i in range(self._n_rows)
        ]

    def value_counts(self, name: str) -> dict:
        """Counts of distinct values in column ``name``."""
        return self.column(name).value_counts()

    def unique(self, name: str) -> tuple:
        """Distinct values occurring in column ``name``."""
        return self.column(name).unique_values()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.column_names != other.column_names:
            return False
        return all(
            np.array_equal(self.values(n), other.values(n)) for n in self.column_names
        )

    def __repr__(self) -> str:
        return f"Table({self._n_rows} rows x {len(self._columns)} columns)"
