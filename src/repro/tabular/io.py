"""CSV round-tripping for :class:`~repro.tabular.table.Table`.

Numeric columns serialise as plain decimal text; categorical columns as their
raw string values.  On read, a column is treated as numeric when every cell
parses as a float, matching :func:`~repro.tabular.column.column_from_values`.
An optional schema constrains parsing: attributes declared categorical stay
categorical even if their values look numeric.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.tabular.column import CategoricalColumn, NumericColumn
from repro.tabular.schema import AttributeKind, Schema
from repro.tabular.table import Table
from repro.utils.errors import SchemaError


def _looks_numeric(cells: list[str]) -> bool:
    """Whether every cell parses as a float (empty cells do not)."""
    for cell in cells:
        try:
            float(cell)
        except ValueError:
            return False
    return bool(cells)


def read_csv(path: str | Path, schema: Schema | None = None) -> Table:
    """Read ``path`` into a :class:`Table`.

    Parameters
    ----------
    path:
        CSV file with a header row.
    schema:
        Optional schema; when given, its attribute kinds override the
        numeric-sniffing heuristic and the file must contain exactly the
        schema's attributes.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path} is empty (no header row)") from None
        raw_rows = [row for row in reader]

    for i, row in enumerate(raw_rows):
        if len(row) != len(header):
            raise SchemaError(
                f"{path}: row {i + 2} has {len(row)} cells, header has {len(header)}"
            )

    columns: dict[str, object] = {}
    for j, name in enumerate(header):
        cells = [row[j] for row in raw_rows]
        if schema is not None:
            kind = schema.spec(name).kind
            force_numeric = kind is AttributeKind.CONTINUOUS
        else:
            force_numeric = _looks_numeric(cells)
        if force_numeric:
            try:
                columns[name] = NumericColumn(np.array([float(c) for c in cells]))
            except ValueError as exc:
                raise SchemaError(f"{path}: column {name!r} is not numeric: {exc}")
        else:
            columns[name] = CategoricalColumn.from_values(cells)
    return Table(columns, schema=schema)


def write_csv(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` with a header row.

    Continuous values are written via ``repr``-free ``str`` formatting;
    integers stored as floats keep a trailing ``.0`` so the round-trip stays
    type-stable.
    """
    path = Path(path)
    decoded = {name: table.values(name) for name in table.column_names}
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        for i in range(table.n_rows):
            writer.writerow([decoded[name][i] for name in table.column_names])
