"""Schemas: attribute kinds and prescription roles (Sec. 4.2 of the paper).

A :class:`Schema` records, per attribute:

- its **kind** — categorical or continuous (Def. 4.1 allows both), and
- its **role** in prescription: *immutable* attributes may appear only in
  grouping patterns, *mutable* attributes only in intervention patterns, the
  single *outcome* attribute in neither, and *auxiliary* attributes in
  neither (they may still act as confounders in the causal DAG).

The disjointness requirements of the paper (``M ∩ I = ∅`` and
``O ∉ M ∪ I``) hold by construction: each attribute has exactly one role.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator

from repro.utils.errors import SchemaError


class AttributeKind(str, Enum):
    """Domain kind of an attribute."""

    CATEGORICAL = "categorical"
    CONTINUOUS = "continuous"


class AttributeRole(str, Enum):
    """Role of an attribute in prescription-rule construction."""

    IMMUTABLE = "immutable"
    MUTABLE = "mutable"
    OUTCOME = "outcome"
    AUXILIARY = "auxiliary"


@dataclass(frozen=True)
class AttributeSpec:
    """Kind and role of a single attribute.

    Attributes
    ----------
    name:
        Attribute (column) name.
    kind:
        :class:`AttributeKind` — categorical or continuous.
    role:
        :class:`AttributeRole` — immutable / mutable / outcome / auxiliary.
    """

    name: str
    kind: AttributeKind
    role: AttributeRole

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        object.__setattr__(self, "kind", AttributeKind(self.kind))
        object.__setattr__(self, "role", AttributeRole(self.role))


class Schema:
    """An ordered collection of :class:`AttributeSpec` with unique names."""

    def __init__(self, specs: Iterable[AttributeSpec]) -> None:
        self.specs: tuple[AttributeSpec, ...] = tuple(specs)
        names = [spec.name for spec in self.specs]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate attribute names: {duplicates}")
        self._by_name = {spec.name: spec for spec in self.specs}
        outcomes = [spec.name for spec in self.specs if spec.role is AttributeRole.OUTCOME]
        if len(outcomes) > 1:
            raise SchemaError(f"at most one outcome attribute allowed, got {outcomes}")

    # -- lookup ------------------------------------------------------------

    def __iter__(self) -> Iterator[AttributeSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def spec(self, name: str) -> AttributeSpec:
        """Return the spec for ``name``; raise :class:`SchemaError` if absent."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"unknown attribute {name!r}") from None

    @property
    def names(self) -> tuple[str, ...]:
        """All attribute names, in declaration order."""
        return tuple(spec.name for spec in self.specs)

    # -- role views ----------------------------------------------------------

    def _names_with_role(self, role: AttributeRole) -> tuple[str, ...]:
        return tuple(s.name for s in self.specs if s.role is role)

    @property
    def immutable_names(self) -> tuple[str, ...]:
        """Attributes allowed in grouping patterns (set ``I`` in the paper)."""
        return self._names_with_role(AttributeRole.IMMUTABLE)

    @property
    def mutable_names(self) -> tuple[str, ...]:
        """Attributes allowed in intervention patterns (set ``M``)."""
        return self._names_with_role(AttributeRole.MUTABLE)

    @property
    def auxiliary_names(self) -> tuple[str, ...]:
        """Attributes excluded from rules (may still confound)."""
        return self._names_with_role(AttributeRole.AUXILIARY)

    @property
    def outcome_name(self) -> str:
        """The outcome attribute ``O``; raises if the schema declares none."""
        outcomes = self._names_with_role(AttributeRole.OUTCOME)
        if not outcomes:
            raise SchemaError("schema declares no outcome attribute")
        return outcomes[0]

    def has_outcome(self) -> bool:
        """Whether an outcome attribute is declared."""
        return bool(self._names_with_role(AttributeRole.OUTCOME))

    # -- derivation ----------------------------------------------------------

    def with_roles(self, **roles: str | AttributeRole) -> "Schema":
        """Return a copy with the given attributes re-assigned new roles.

        >>> schema = Schema([AttributeSpec("a", "categorical", "immutable")])
        >>> schema.with_roles(a="mutable").spec("a").role
        <AttributeRole.MUTABLE: 'mutable'>
        """
        for name in roles:
            if name not in self:
                raise SchemaError(f"unknown attribute {name!r}")
        new_specs = [
            AttributeSpec(s.name, s.kind, AttributeRole(roles.get(s.name, s.role)))
            for s in self.specs
        ]
        return Schema(new_specs)

    def restrict(self, names: Iterable[str]) -> "Schema":
        """Return the sub-schema over ``names`` (declaration order kept)."""
        wanted = set(names)
        missing = wanted - set(self.names)
        if missing:
            raise SchemaError(f"unknown attributes: {sorted(missing)}")
        return Schema(s for s in self.specs if s.name in wanted)

    def validate_for_prescription(self) -> None:
        """Check the invariants FairCap relies on.

        Requires an outcome attribute, at least one immutable attribute (for
        grouping patterns) and at least one mutable attribute (for
        intervention patterns).
        """
        if not self.has_outcome():
            raise SchemaError("prescription requires an outcome attribute")
        if not self.immutable_names:
            raise SchemaError("prescription requires at least one immutable attribute")
        if not self.mutable_names:
            raise SchemaError("prescription requires at least one mutable attribute")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.specs == other.specs

    def __repr__(self) -> str:
        return (
            f"Schema({len(self.specs)} attributes: "
            f"{len(self.immutable_names)} immutable, "
            f"{len(self.mutable_names)} mutable, "
            f"outcome={self._names_with_role(AttributeRole.OUTCOME) or None})"
        )
