"""Typed columns backing :class:`repro.tabular.table.Table`.

Two concrete column types cover the paper's setting (Sec. 4: domains are
categorical or continuous):

- :class:`CategoricalColumn` stores values as ``int32`` codes into a fixed
  ``categories`` tuple, so equality predicates reduce to integer comparisons
  and copies are cheap.
- :class:`NumericColumn` stores a ``float64`` array and supports the full
  ordered-comparison predicate set ``=, !=, <, >, <=, >=``.

Columns are immutable: every transformation returns a new column sharing no
mutable state with its source (the underlying arrays are marked read-only).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

from repro.utils.errors import PatternError, SchemaError


def _readonly(array: np.ndarray) -> np.ndarray:
    """Return ``array`` flagged read-only (view when possible)."""
    array = np.asarray(array)
    view = array.view()
    view.flags.writeable = False
    return view


class CategoricalColumn:
    """An integer-coded categorical column.

    Parameters
    ----------
    codes:
        ``int`` array; each entry indexes into ``categories``.
    categories:
        The distinct values, in code order.  Values may be any hashable
        (typically ``str``).

    Notes
    -----
    Ordering comparisons (``<`` etc.) deliberately raise
    :class:`~repro.utils.errors.PatternError`: the paper's categorical domains
    (countries, roles, age buckets) have no library-defined order, and a
    silent lexicographic order would invent structure the data does not have.
    """

    kind = "categorical"

    def __init__(self, codes: np.ndarray, categories: Sequence[object]) -> None:
        codes = np.asarray(codes, dtype=np.int32)
        if codes.ndim != 1:
            raise SchemaError("categorical codes must be one-dimensional")
        self.categories: tuple = tuple(categories)
        if len(set(self.categories)) != len(self.categories):
            raise SchemaError("categorical categories must be distinct")
        if codes.size and (codes.min() < 0 or codes.max() >= len(self.categories)):
            raise SchemaError(
                "categorical codes out of range "
                f"[0, {len(self.categories)}): saw [{codes.min()}, {codes.max()}]"
            )
        self.codes = _readonly(codes)
        self._index = {value: i for i, value in enumerate(self.categories)}

    @classmethod
    def from_values(cls, values: Iterable[object]) -> "CategoricalColumn":
        """Factorize raw ``values`` into a column with sorted categories."""
        values = list(values)
        categories = sorted(set(values), key=str)
        index = {value: i for i, value in enumerate(categories)}
        codes = np.fromiter((index[v] for v in values), dtype=np.int32, count=len(values))
        return cls(codes, categories)

    def __len__(self) -> int:
        return int(self.codes.size)

    def code_of(self, value: object) -> int:
        """Return the integer code for ``value``, or ``-1`` if absent."""
        return self._index.get(value, -1)

    def decode(self) -> np.ndarray:
        """Return the column as an object array of category values."""
        lookup = np.asarray(self.categories, dtype=object)
        return lookup[self.codes]

    def take(self, selector: np.ndarray) -> "CategoricalColumn":
        """Return a new column of the rows selected by a mask or index array."""
        return CategoricalColumn(self.codes[selector], self.categories)

    def eq(self, value: object) -> np.ndarray:
        """Vectorised ``column == value``; all-False if value is unseen."""
        code = self.code_of(value)
        if code < 0:
            return np.zeros(len(self), dtype=bool)
        return self.codes == code

    def ne(self, value: object) -> np.ndarray:
        """Vectorised ``column != value``."""
        return ~self.eq(value)

    def _ordered_unsupported(self, op: str) -> np.ndarray:
        raise PatternError(
            f"operator {op!r} is not defined for categorical columns; "
            "use '=' or '!=' (or model the attribute as continuous)"
        )

    def lt(self, value: object) -> np.ndarray:  # noqa: D102 - uniform interface
        return self._ordered_unsupported("<")

    def gt(self, value: object) -> np.ndarray:  # noqa: D102
        return self._ordered_unsupported(">")

    def le(self, value: object) -> np.ndarray:  # noqa: D102
        return self._ordered_unsupported("<=")

    def ge(self, value: object) -> np.ndarray:  # noqa: D102
        return self._ordered_unsupported(">=")

    def unique_values(self) -> tuple:
        """Categories that actually occur, in category order."""
        present = np.unique(self.codes)
        return tuple(self.categories[int(c)] for c in present)

    def value_counts(self) -> dict:
        """Mapping of occurring category value -> count."""
        counts = np.bincount(self.codes, minlength=len(self.categories))
        return {
            value: int(counts[i])
            for i, value in enumerate(self.categories)
            if counts[i] > 0
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CategoricalColumn):
            return NotImplemented
        return self.categories == other.categories and np.array_equal(
            self.codes, other.codes
        )

    def __repr__(self) -> str:
        return (
            f"CategoricalColumn(n={len(self)}, "
            f"categories={len(self.categories)})"
        )


class NumericColumn:
    """A continuous (``float64``) column supporting ordered comparisons."""

    kind = "continuous"

    def __init__(self, values: Iterable[float]) -> None:
        array = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                           dtype=np.float64)
        if array.ndim != 1:
            raise SchemaError("numeric values must be one-dimensional")
        self.array = _readonly(array)

    def __len__(self) -> int:
        return int(self.array.size)

    def decode(self) -> np.ndarray:
        """Return the raw float array (read-only view)."""
        return self.array

    def take(self, selector: np.ndarray) -> "NumericColumn":
        """Return a new column of the rows selected by a mask or index array."""
        return NumericColumn(self.array[selector])

    def eq(self, value: object) -> np.ndarray:  # noqa: D102 - uniform interface
        return self.array == float(value)  # type: ignore[arg-type]

    def ne(self, value: object) -> np.ndarray:  # noqa: D102
        return self.array != float(value)  # type: ignore[arg-type]

    def lt(self, value: object) -> np.ndarray:  # noqa: D102
        return self.array < float(value)  # type: ignore[arg-type]

    def gt(self, value: object) -> np.ndarray:  # noqa: D102
        return self.array > float(value)  # type: ignore[arg-type]

    def le(self, value: object) -> np.ndarray:  # noqa: D102
        return self.array <= float(value)  # type: ignore[arg-type]

    def ge(self, value: object) -> np.ndarray:  # noqa: D102
        return self.array >= float(value)  # type: ignore[arg-type]

    def unique_values(self) -> tuple:
        """Distinct values in ascending order."""
        return tuple(float(v) for v in np.unique(self.array))

    def value_counts(self) -> dict:
        """Mapping of distinct value -> count (ascending by value)."""
        values, counts = np.unique(self.array, return_counts=True)
        return {float(v): int(c) for v, c in zip(values, counts)}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NumericColumn):
            return NotImplemented
        return np.array_equal(self.array, other.array)

    def __repr__(self) -> str:
        return f"NumericColumn(n={len(self)})"


Column = Union[CategoricalColumn, NumericColumn]
"""Union type of the two concrete column classes."""


def column_from_values(values: Iterable[object]) -> Column:
    """Build the appropriate column type by inspecting ``values``.

    All-numeric input (ints, floats, bools, numpy numbers) becomes a
    :class:`NumericColumn`; anything else becomes a
    :class:`CategoricalColumn`.
    """
    if isinstance(values, CategoricalColumn) or isinstance(values, NumericColumn):
        return values
    if isinstance(values, np.ndarray) and values.dtype.kind in "ifub":
        return NumericColumn(values)
    values = list(values)
    if values and all(isinstance(v, (int, float, np.integer, np.floating, bool))
                      for v in values):
        return NumericColumn(np.asarray(values, dtype=np.float64))
    return CategoricalColumn.from_values(values)
