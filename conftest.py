"""Repo-root pytest configuration.

Lives at the rootdir so its command-line options are registered before
argument parsing regardless of how pytest is invoked (``python -m pytest``,
``pytest tests/...``, CI).
"""

from __future__ import annotations


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/experiments/goldens/*.json from the current "
        "implementation instead of comparing against them (use after an "
        "*intentional* change to paper numbers; review the diff)",
    )


def pytest_configure(config) -> None:
    config.addinivalue_line(
        "markers",
        "slow: end-to-end pipeline tests (seconds each); always part of tier-1",
    )
