"""Repo-root pytest configuration.

Lives at the rootdir so its command-line options are registered before
argument parsing regardless of how pytest is invoked (``python -m pytest``,
``pytest tests/...``, CI).  Markers (``slow``, ``scenario``,
``integration``) are registered in ``pyproject.toml``.
"""

from __future__ import annotations


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/experiments/goldens/*.json from the current "
        "implementation instead of comparing against them (use after an "
        "*intentional* change to paper numbers; review the diff)",
    )
